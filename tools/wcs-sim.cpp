//===- tools/wcs-sim.cpp - Command-line cache simulator -------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The command-line face of the library, mirroring the paper's tool: it
// takes cache parameters and a polyhedral program (a PolyBench kernel by
// name, or a file in the wcs loop-nest dialect) and reports cache access
// and miss counts.
//
//   wcs-sim --kernel jacobi-2d --size large
//   wcs-sim --file mykernel.c --param N=1024 --l1 4096,8,plru
//           --l2 32768,16,qlru
//   wcs-sim --kernel gemm --compare
//   wcs-sim --all --size medium --jobs 8
//   wcs-sim --kernel gemm --sweep --sweep-l1 8K:256K:x2,assoc=4,8
//
// Simulation runs through the wcs::BatchRunner driver: --all sweeps the
// whole PolyBench registry as one batch and --jobs N fans the jobs over
// N worker threads (counters are identical for every N). --sweep
// evaluates a whole grid of cache configurations through the sweep
// driver instead: single-level LRU points are answered from one shared
// stack-distance pass, two-level NINE points (--sweep-l2) share one
// recorded L1-miss-filtered stream per distinct L1, and the rest are
// deduplicated simulation jobs.
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/BatchRunner.h"
#include "wcs/driver/Results.h"
#include "wcs/driver/Sweep.h"
#include "wcs/driver/SweepRequest.h"
#include "wcs/frontend/Frontend.h"
#include "wcs/polybench/Polybench.h"
#include "wcs/support/StringUtil.h"
#include "wcs/support/Telemetry.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace wcs;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: wcs-sim [options]\n"
      "  --kernel NAME         simulate a PolyBench kernel (see --list)\n"
      "  --all                 simulate every PolyBench kernel (batch)\n"
      "  --size S              mini|small|medium|large|xlarge "
      "(default: large)\n"
      "  --file PATH           simulate a kernel file in the wcs dialect\n"
      "  --param NAME=VALUE    bind a parameter (repeatable; for --file)\n"
      "  --l1 BYTES,ASSOC,POL  L1 config (default 4096,8,plru)\n"
      "  --l2 BYTES,ASSOC,POL  add an L2 (pol: lru|fifo|plru|qlru)\n"
      "  --no-write-allocate   write misses bypass the L1\n"
      "  --scalars             include scalar accesses\n"
      "  --backend B           warp|concrete|trace (default: warp)\n"
      "  --no-warp             same as --backend concrete\n"
      "  --compare             run warping + concrete and verify + report\n"
      "  --json FILE           also write the results as JSON "
      "(wcs-results schema;\n"
      "                        feed two such files to wcs-report)\n"
      "  --sweep               sweep a grid of cache configs in one run\n"
      "                        (single-level LRU points share\n"
      "                        stack-distance passes; the rest simulate)\n"
      "  --no-warp-sweep       force the linear shared trace pass (by\n"
      "                        default long traces use warp-aware\n"
      "                        periodic passes; results are identical)\n"
      "  --warp-sweep-threshold N\n"
      "                        trace length (accesses) at which the\n"
      "                        periodic pass takes over (default 2M;\n"
      "                        0 = always periodic)\n"
      "  --sweep-l1 GRID       L1 grid: SIZES[,assoc=A,..][,policy=P,..]"
      "[,block=N]\n"
      "                        SIZES: capacities (8K) and/or ranges "
      "LO:HI:xF;\n"
      "                        assoc also takes 'full' "
      "(default 8K:256K:x2,assoc=8)\n"
      "  --sweep-l2 GRID       add an L2 axis (cross product with the L1 "
      "grid;\n"
      "                        points sharing an L1 share one recorded\n"
      "                        L1-miss-filtered stream, NINE semantics)\n"
      "  --sweep-json FILE     write the sweep as JSON (wcs-sweep "
      "schema)\n"
      "  --emit-request FILE   write the sweep as a wcs-request document\n"
      "                        and exit without running; the same\n"
      "                        document replays through wcs-sim or a\n"
      "                        wcs-serve daemon, bit-identically\n"
      "  --deadline S          stamp the request with a serving deadline\n"
      "                        of S seconds (a daemon returns partial\n"
      "                        results past it; ignored when the sweep\n"
      "                        runs in-process; default 0 = none)\n"
      "  --max-filtered-records N\n"
      "                        cap the stored records of one L1-miss\n"
      "                        stream (0 = unlimited; capped groups\n"
      "                        fall back to full simulation)\n"
      "  --jobs N              simulate on N worker threads "
      "(default 1; 0 = all cores)\n"
      "  --trace-json FILE     record spans (passes, recordings, jobs)\n"
      "                        and write a Chrome trace-event file --\n"
      "                        loadable in Perfetto -- on exit\n"
      "  --dump                print the program tree before simulating\n"
      "  --list                list the PolyBench kernels and exit\n");
}

/// --trace-json sink, written via atexit so EVERY exit path -- batch,
/// sweep, early errors -- flushes the spans recorded so far.
std::string TraceJsonPath;

void writeTraceAtExit() {
  std::string Err;
  if (!telemetry::writeTraceFile(TraceJsonPath, &Err))
    std::fprintf(stderr, "error: %s\n", Err.c_str());
  else
    std::fprintf(stderr, "trace    wrote %s\n", TraceJsonPath.c_str());
}

void printStats(const char *Tag, const SimStats &S) {
  std::printf("%s:\n", Tag);
  std::printf("  accesses      %llu\n",
              static_cast<unsigned long long>(S.totalAccesses()));
  for (unsigned L = 0; L < S.NumLevels; ++L)
    std::printf("  L%u misses     %llu  (%.3f%% of L%u accesses)\n", L + 1,
                static_cast<unsigned long long>(S.Level[L].Misses),
                100.0 * S.Level[L].missRatio(), L + 1);
  std::printf("  simulated     %llu  warped %llu  (%.2f%% non-warped, "
              "%llu warps)\n",
              static_cast<unsigned long long>(S.SimulatedAccesses),
              static_cast<unsigned long long>(S.WarpedAccesses),
              100.0 * S.nonWarpedShare(),
              static_cast<unsigned long long>(S.Warps));
  std::printf("  time          %.4f s\n", S.Seconds);
}

} // namespace

int main(int argc, char **argv) {
  std::string Kernel, File, JsonPath;
  ProblemSize Size = ProblemSize::Large;
  std::map<std::string, int64_t> Params;
  CacheConfig L1{4096, 8, 64, PolicyKind::Plru, WriteAllocate::Yes};
  CacheConfig L2;
  bool Sweep = false, WarpSweep = true;
  uint64_t MaxFilteredRecords = 0;
  bool MaxFilteredRecordsSet = false;
  uint64_t WarpSweepThreshold = 0;
  bool WarpSweepThresholdSet = false;
  std::string SweepL1Spec = "8K:256K:x2,assoc=8", SweepL2Spec,
      SweepJsonPath, EmitRequestPath;
  double DeadlineSeconds = 0.0;
  bool HasL2 = false, HasL1 = false, NoWriteAlloc = false;
  bool All = false, Compare = false, Dump = false;
  SimBackend Backend = SimBackend::Warping;
  bool BackendSet = false;
  unsigned Jobs = 1;
  SimOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--kernel") {
      Kernel = Next();
    } else if (A == "--all") {
      All = true;
    } else if (A == "--jobs") {
      const char *N = Next();
      if (!parseJobCount(N, Jobs)) {
        std::fprintf(stderr,
                     "error: --jobs expects a non-negative number, got '%s'\n",
                     N);
        return 2;
      }
    } else if (A == "--backend") {
      const char *B = Next();
      if (!parseBackendName(B, Backend)) {
        std::fprintf(stderr, "error: unknown backend '%s'\n", B);
        return 2;
      }
      BackendSet = true;
    } else if (A == "--file") {
      File = Next();
    } else if (A == "--json") {
      JsonPath = Next();
    } else if (A == "--trace-json") {
      if (TraceJsonPath.empty()) {
        telemetry::enableTracing();
        std::atexit(writeTraceAtExit);
      }
      TraceJsonPath = Next();
    } else if (A == "--sweep") {
      Sweep = true;
    } else if (A == "--sweep-l1") {
      SweepL1Spec = Next();
      Sweep = true;
    } else if (A == "--sweep-l2") {
      SweepL2Spec = Next();
      Sweep = true;
    } else if (A == "--sweep-json") {
      SweepJsonPath = Next();
      Sweep = true;
    } else if (A == "--emit-request") {
      EmitRequestPath = Next();
      Sweep = true;
    } else if (A == "--deadline") {
      const char *N = Next();
      char *End = nullptr;
      double V = std::strtod(N, &End);
      if (End == N || *End != '\0' || !(V >= 0)) {
        std::fprintf(stderr,
                     "error: --deadline expects a non-negative number of "
                     "seconds, got '%s'\n",
                     N);
        return 2;
      }
      DeadlineSeconds = V;
      Sweep = true;
    } else if (A == "--max-filtered-records") {
      const char *N = Next();
      if (!parseUInt64(N, MaxFilteredRecords, UINT64_MAX)) {
        std::fprintf(stderr,
                     "error: --max-filtered-records expects a "
                     "non-negative record count, got '%s'\n",
                     N);
        return 2;
      }
      MaxFilteredRecordsSet = true;
      Sweep = true;
    } else if (A == "--no-warp-sweep") {
      WarpSweep = false;
      Sweep = true;
    } else if (A == "--warp-sweep-threshold") {
      const char *N = Next();
      if (!parseUInt64(N, WarpSweepThreshold, UINT64_MAX)) {
        std::fprintf(stderr,
                     "error: --warp-sweep-threshold expects a "
                     "non-negative access count, got '%s'\n",
                     N);
        return 2;
      }
      WarpSweepThresholdSet = true;
      Sweep = true;
    } else if (A == "--size") {
      if (!parseProblemSize(Next(), Size)) {
        std::fprintf(stderr, "error: unknown size\n");
        return 2;
      }
    } else if (A == "--param") {
      const char *P = Next();
      std::string ParamName;
      int64_t ParamVal = 0;
      if (!parseParamBinding(P, ParamName, ParamVal)) {
        std::fprintf(stderr,
                     "error: --param expects NAME=VALUE with an integer "
                     "value, got '%s'\n",
                     P);
        return 2;
      }
      Params[ParamName] = ParamVal;
    } else if (A == "--l1") {
      if (!parseCacheSpec(Next(), L1)) {
        std::fprintf(stderr, "error: bad --l1 spec\n");
        return 2;
      }
      HasL1 = true;
    } else if (A == "--l2") {
      if (!parseCacheSpec(Next(), L2)) {
        std::fprintf(stderr, "error: bad --l2 spec\n");
        return 2;
      }
      HasL2 = true;
    } else if (A == "--no-write-allocate") {
      L1.WriteAlloc = WriteAllocate::No;
      NoWriteAlloc = true;
    } else if (A == "--scalars") {
      Opts.IncludeScalars = true;
    } else if (A == "--no-warp") {
      Backend = SimBackend::Concrete;
      BackendSet = true;
    } else if (A == "--compare") {
      Compare = true;
    } else if (A == "--dump") {
      Dump = true;
    } else if (A == "--list") {
      for (const KernelInfo &K : polybenchKernels())
        std::printf("%-16s %s\n", K.Name, K.Category);
      return 0;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }

  if (Compare && BackendSet) {
    std::fprintf(stderr, "error: --compare always runs the warping vs "
                         "concrete pair; drop --backend / --no-warp\n");
    return 2;
  }
  if (Sweep && (Compare || All)) {
    std::fprintf(stderr, "error: --sweep takes a single program "
                         "(--kernel or --file) and no --compare\n");
    return 2;
  }
  if (Sweep && (HasL1 || HasL2 || NoWriteAlloc)) {
    std::fprintf(stderr,
                 "error: --sweep configures caches through --sweep-l1 / "
                 "--sweep-l2; drop --l1/--l2/--no-write-allocate\n");
    return 2;
  }
  if (static_cast<int>(!Kernel.empty()) + static_cast<int>(!File.empty()) +
          static_cast<int>(All) !=
      1) {
    std::fprintf(stderr,
                 "error: give exactly one of --kernel / --file / --all\n");
    usage();
    return 2;
  }

  if (Sweep) {
    // The sweep path is a thin adapter over the wcs-request API: flags
    // become a SweepRequest, and the SAME request type runs here or --
    // via --emit-request and wcs-serve --client -- in a daemon,
    // producing bit-identical counters either way.
    std::string Err;
    SweepRequest Req;
    if (!Kernel.empty()) {
      Req.Kernel = Kernel;
      Req.Size = Size;
    } else {
      std::ifstream In(File);
      if (!In) {
        std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Req.Source = SS.str();
      Req.SourceName = File;
      Req.Params = Params;
    }
    if (!parseSweepLevelGrid(SweepL1Spec, Req.L1, &Err) ||
        (!SweepL2Spec.empty() &&
         !parseSweepLevelGrid(SweepL2Spec, Req.L2, &Err))) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
    Req.HasL2 = !SweepL2Spec.empty();
    Req.Options.Sim = Opts;
    Req.Options.WarpSweep = WarpSweep;
    if (WarpSweepThresholdSet)
      Req.Options.WarpSweepMinAccesses = WarpSweepThreshold;
    if (BackendSet)
      Req.Options.Backend = Backend;
    if (MaxFilteredRecordsSet)
      Req.Options.MaxFilteredRecords = MaxFilteredRecords;
    // Meaningful when the request reaches a daemon (--emit-request +
    // wcs-serve --client); the in-process sweep below ignores it.
    Req.DeadlineSeconds = DeadlineSeconds;

    if (!EmitRequestPath.empty()) {
      PreparedSweep Prep; // Validate fully before emitting.
      if (!prepareSweep(Req, Prep, &Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
      if (!writeRequestFile(EmitRequestPath, Req, &Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "request  wrote %s (%zu grid points, hash %s)\n",
                   EmitRequestPath.c_str(), Prep.Configs.size(),
                   requestHash(Req).c_str());
      return 0;
    }

    PreparedSweep Prep;
    SweepReport Rep;
    if (!runSweepRequest(Req, Jobs, Prep, Rep, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    if (Dump)
      std::printf("%s\n", Prep.Program.str().c_str());

    std::printf("program  %s  (%zu grid points)\n\n",
                Prep.Program.Name.c_str(), Prep.Configs.size());
    // Cap-demoted groups change a point's method from filtered-stream
    // to full simulation; surface that here, not just in the document.
    for (const std::string &L1Group : Rep.DemotedL1s)
      std::fprintf(stderr,
                   "warning: filtered-stream recording of L1 group %s "
                   "overran the stream cap%s; its grid points fell back "
                   "to full simulation (method \"simulated\")\n",
                   L1Group.c_str(),
                   Req.Options.MaxFilteredRecords
                       ? ""
                       : " (unexpectedly, with an unlimited cap)");
    std::printf("%-44s %-14s %14s %10s %11s\n", "config", "method",
                "misses", "ratio", "time[s]");
    for (const SweepPoint &Pt : Rep.Points) {
      if (!Pt.Ok) {
        std::printf("%-44s FAILED: %s\n", Pt.Cache.str().c_str(),
                    Pt.Error.c_str());
        continue;
      }
      uint64_t Misses = 0;
      for (unsigned L = 0; L < Pt.Stats.NumLevels; ++L)
        Misses += Pt.Stats.Level[L].Misses;
      std::printf("%-44s %-14s %14llu %9.3f%% %11.4f\n",
                  Pt.Cache.str().c_str(), sweepMethodName(Pt.Method),
                  static_cast<unsigned long long>(Misses),
                  100.0 * Pt.Stats.Level[0].missRatio(),
                  Pt.Stats.Seconds);
    }
    std::fprintf(stderr, "sweep    %s\n", Rep.summary().c_str());
    // Per-method breakdown: where the sweep's time actually went, so
    // speedup claims are auditable straight from the run. Rendered
    // from the packaged document by the same formatter wcs-report
    // uses, so run output and artifact rendering cannot drift.
    SweepDoc Doc = makeSweepDoc("wcs-sim", Req.programLabel(),
                                Req.sizeLabel(), Rep);
    std::fprintf(stderr, "methods  %s\n",
                 methodBreakdownLine(Doc).c_str());

    if (!SweepJsonPath.empty()) {
      if (!writeSweepFile(SweepJsonPath, Doc, &Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
      std::fprintf(stderr, "results  wrote %zu points to %s\n",
                   Doc.Points.size(), SweepJsonPath.c_str());
    }
    return Rep.allOk() ? 0 : 1;
  }

  // The work list: one or thirty programs, owned here and shared by the
  // jobs (stable addresses via reserve).
  std::vector<ScopProgram> Programs;
  if (All) {
    const std::vector<KernelInfo> &Kernels = polybenchKernels();
    Programs.reserve(Kernels.size());
    for (const KernelInfo &K : Kernels) {
      std::string Err;
      Programs.push_back(buildKernel(K, Size, &Err));
      if (!Err.empty()) {
        std::fprintf(stderr, "error: %s: %s\n", K.Name, Err.c_str());
        return 1;
      }
    }
  } else if (!Kernel.empty()) {
    std::string Err;
    Programs.push_back(buildKernel(Kernel, Size, &Err));
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  } else {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    ParseResult PR = parseScop(SS.str(), Params, File);
    if (!PR.ok()) {
      std::fprintf(stderr, "%s: %s\n", File.c_str(),
                   PR.message().c_str());
      return 1;
    }
    Programs.push_back(std::move(PR.Program));
  }

  HierarchyConfig H = HasL2 ? HierarchyConfig::twoLevel(L1, L2)
                            : HierarchyConfig::singleLevel(L1);
  std::string CfgErr = H.validate();
  if (!CfgErr.empty()) {
    std::fprintf(stderr, "error: %s\n", CfgErr.c_str());
    return 2;
  }
  std::printf("cache    %s\n", H.str().c_str());

  // Per program: one job for the chosen backend, or a concrete + warping
  // pair under --compare.
  std::vector<BatchJob> Work;
  for (const ScopProgram &P : Programs) {
    if (Dump)
      std::printf("%s\n", P.str().c_str());
    BatchJob J;
    J.Program = &P;
    J.Cache = H;
    J.Options = Opts;
    J.Tag = P.Name;
    if (Compare) {
      // Distinct tags per backend: results files key on the tag, so the
      // two halves of a pair must not collide.
      J.Backend = SimBackend::Concrete;
      J.Tag = P.Name + std::string("/") + backendName(J.Backend);
      Work.push_back(J);
      J.Backend = SimBackend::Warping;
      J.Tag = P.Name + std::string("/") + backendName(J.Backend);
      Work.push_back(std::move(J));
    } else {
      J.Backend = Backend;
      Work.push_back(std::move(J));
    }
  }

  BatchRunner Runner(Jobs);
  BatchReport Rep = Runner.run(Work);

  bool AllMatch = true;
  for (size_t PI = 0; PI < Programs.size(); ++PI) {
    const size_t Base = Compare ? 2 * PI : PI;
    for (size_t J = Base; J < Base + (Compare ? 2u : 1u); ++J)
      if (!Rep.Results[J].Ok) {
        std::fprintf(stderr, "error: %s: %s\n", Rep.Results[J].Tag.c_str(),
                     Rep.Results[J].Error.c_str());
        return 1;
      }
    std::printf("\nprogram  %s\n", Programs[PI].Name.c_str());
    if (Compare) {
      const SimStats &R = Rep.Results[Base].Stats;
      const SimStats &W = Rep.Results[Base + 1].Stats;
      printStats("non-warping (Algorithm 1)", R);
      printStats("warping (Algorithm 2)", W);
      bool Ok = R.totalAccesses() == W.totalAccesses();
      for (unsigned L = 0; L < R.NumLevels; ++L)
        Ok = Ok && R.Level[L].Misses == W.Level[L].Misses;
      AllMatch = AllMatch && Ok;
      std::printf("%s  (speedup %.2fx)\n",
                  Ok ? "results MATCH" : "results DIFFER (bug!)",
                  R.Seconds / W.Seconds);
    } else {
      const char *Tag = Backend == SimBackend::Warping
                            ? "warping (Algorithm 2)"
                        : Backend == SimBackend::Concrete
                            ? "non-warping (Algorithm 1)"
                        : Backend == SimBackend::Trace
                            ? "trace-driven"
                            : "stack-distance (analytical LRU)";
      printStats(Tag, Rep.Results[Base].Stats);
    }
  }

  if (!JsonPath.empty()) {
    ResultsDoc Doc;
    Doc.Tool = "wcs-sim";
    Doc.SizeName = File.empty() ? problemSizeName(Size) : "";
    Doc.Threads = Rep.Threads;
    Doc.Entries = makeResultEntries(Work, Rep);
    std::string Err;
    if (!writeResultsFile(JsonPath, Doc, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "results  wrote %zu entries to %s\n",
                 Doc.Entries.size(), JsonPath.c_str());
  }

  if (Work.size() > 1)
    std::fprintf(stderr, "batch    %s\n", Rep.summary().c_str());
  if (Compare && Rep.Threads > 1)
    std::fprintf(stderr,
                 "note     speedups measured with %u concurrent jobs "
                 "include contention; use --jobs 1 for clean timings\n",
                 Rep.Threads);
  return AllMatch ? 0 : 1;
}
