//===- bench/BenchCommon.cpp ----------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace wcs;
using namespace wcs::bench;

ProblemSize wcs::bench::sizeFromEnv(ProblemSize Default) {
  const char *E = std::getenv("WCS_SIZE");
  if (!E)
    return Default;
  ProblemSize S = Default;
  if (!parseProblemSize(E, S))
    std::fprintf(stderr, "warning: unknown WCS_SIZE '%s' ignored\n", E);
  return S;
}

HierarchyConfig wcs::bench::scaledTestSystem() {
  return HierarchyConfig::twoLevel(CacheConfig::scaledL1(),
                                   CacheConfig::scaledL2());
}

HierarchyConfig wcs::bench::scaledPolyCacheConfig() {
  CacheConfig L1{4 * 1024, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig L2{32 * 1024, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
  return HierarchyConfig::twoLevel(L1, L2);
}

CacheConfig wcs::bench::fullyAssociativeTwin(const CacheConfig &C) {
  CacheConfig F = C;
  F.Assoc = C.numLines();
  F.Policy = PolicyKind::Lru;
  return F;
}

ScopProgram wcs::bench::mustBuild(const KernelInfo &K, ProblemSize S) {
  std::string Err;
  ScopProgram P = buildKernel(K, S, &Err);
  if (!Err.empty()) {
    std::fprintf(stderr, "fatal: cannot build %s at %s: %s\n", K.Name,
                 problemSizeName(S), Err.c_str());
    std::exit(1);
  }
  return P;
}

unsigned wcs::bench::jobsFromEnv(unsigned Default) {
  const char *E = std::getenv("WCS_JOBS");
  if (!E)
    return Default;
  unsigned N = Default;
  if (!parseJobCount(E, N))
    std::fprintf(stderr, "warning: ignoring malformed WCS_JOBS '%s'\n", E);
  return N;
}

BatchReport wcs::bench::runBatch(const std::vector<BatchJob> &Jobs,
                                 unsigned DefaultThreads) {
  return runBatchOn(Jobs, jobsFromEnv(DefaultThreads));
}

BatchReport wcs::bench::runBatchOn(const std::vector<BatchJob> &Jobs,
                                   unsigned Threads) {
  BatchRunner Runner(Threads);
  BatchReport Rep = Runner.run(Jobs);
  for (const BatchResult &R : Rep.Results)
    if (!R.Ok) {
      std::fprintf(stderr, "fatal: job %zu (%s) failed: %s\n", R.JobIndex,
                   R.Tag.c_str(), R.Error.c_str());
      std::exit(1);
    }
  std::fprintf(stderr, "batch: %s\n", Rep.summary().c_str());
  return Rep;
}

void wcs::bench::requireEqualMisses(const char *Kernel, const SimStats &A,
                                    const SimStats &B) {
  bool Ok = A.totalAccesses() == B.totalAccesses();
  for (unsigned L = 0; Ok && L < A.NumLevels && L < B.NumLevels; ++L)
    Ok = A.Level[L].Misses == B.Level[L].Misses &&
         A.Level[L].Accesses == B.Level[L].Accesses;
  if (Ok)
    return;
  std::fprintf(stderr,
               "fatal: simulator disagreement on %s:\n  A: %s\n  B: %s\n",
               Kernel, A.str().c_str(), B.str().c_str());
  std::exit(1);
}

