//===- wcs/serve/Scheduler.h - Cross-request job scheduler ------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wcs-serve cross-request job scheduler: one BatchRunner worker
/// pool and one ResultStore shared by every connection the daemon
/// serves concurrently. serve() is called from many connection threads
/// at once; each call
///
///  - answers store hits immediately (method "store", counters
///    verbatim),
///  - SUBSCRIBES to any point another in-flight request is already
///    computing, so two overlapping grids compute each shared point
///    ONCE even before it reaches the store,
///  - splits its remaining points into sub-sweep jobs along the seams
///    partitionSweepGroups defines -- points that share a
///    stack-distance pass or a filtered stream stay in one job, so
///    interleaving requests never gives up intra-request sharing --
///    and enqueues them.
///
/// Workers pick jobs fairly: one job per request per round-robin turn,
/// so a huge sweep cannot starve a small one (it can only occupy the
/// workers for the duration of single jobs). Completed points stream
/// back to their connection thread as ProgressEvents; the scheduler
/// never writes to a socket itself. A request whose client disconnects
/// is cancelled: its queued jobs with no external subscriber are
/// dropped before they run, its subscriptions are withdrawn, and only
/// jobs already running (or still wanted by other requests) finish.
///
/// The scheduler's one mutex also serializes every ResultStore access
/// -- the store is not thread-safe, and funneling all inserts through
/// the scheduler is what guarantees a single writer no matter how many
/// requests race on the same key.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SERVE_SCHEDULER_H
#define WCS_SERVE_SCHEDULER_H

#include "wcs/driver/BatchRunner.h"
#include "wcs/serve/Protocol.h"
#include "wcs/serve/ResultStore.h"
#include "wcs/support/Telemetry.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace wcs {

class Scheduler {
public:
  /// Counter snapshot for the wcs-control "status" command and tests.
  struct Stats {
    uint64_t RequestsServed = 0; ///< serve() calls completed (any outcome).
    uint64_t PointsComputed = 0; ///< Points computed by scheduler jobs.
    uint64_t StoreHits = 0;      ///< Points answered from the store.
    uint64_t InFlightHits = 0;   ///< Points answered by subscription.
    uint64_t CancelledJobs = 0;  ///< Queued jobs dropped on disconnect
                                 ///< or deadline expiry.
    uint64_t DeadlineExpired = 0; ///< Requests that hit their deadline.
    uint64_t ShedRequests = 0;   ///< Requests refused by the admission cap.
    uint64_t ActiveRequests = 0; ///< serve() calls in flight right now.
    uint64_t QueuedJobs = 0;     ///< Jobs enqueued, not yet running.
    uint64_t QueuedPoints = 0;   ///< Points in those queued jobs.
    uint64_t StoreEntries = 0;   ///< Live store size.
  };

  /// \p Threads sizes the worker pool (0 = all cores); workers start
  /// immediately. \p Store must outlive the scheduler and must not be
  /// touched by anyone else while it runs (the scheduler's lock is its
  /// only serialization). \p MaxQueuedPoints caps admission (0 = no
  /// cap): a request whose own to-compute points would push the queued
  /// total past the cap is refused immediately with Error="overloaded"
  /// and a retry_after_seconds hint -- store hits and subscriptions
  /// cost no queue budget, so a request the store can answer is never
  /// shed.
  Scheduler(ResultStore &Store, unsigned Threads,
            uint64_t MaxQueuedPoints = 0);

  /// Joins the pool. Precondition: no serve() call in flight (the
  /// server joins its connection threads first).
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Serves one request, blocking until every point is answered or the
  /// request is cancelled. Safe to call from many threads at once.
  ///
  /// \p OnProgress (may be null) fires once per point -- store hits
  /// first in input order, then computed and subscribed points in
  /// completion order -- always on the calling thread, never under the
  /// scheduler lock. Returning false cancels the request (the daemon
  /// returns false when the socket write fails, i.e. the client went
  /// away). \p IsCancelled (may be null) is polled between events and
  /// while waiting, so a disconnect cancels even when no progress is
  /// due; a cancelled request comes back Ok=false after its
  /// still-running jobs drain.
  ///
  /// Semantics match serveSweepRequest (the serial reference
  /// implementation) bit-for-bit on counters and provenance, except
  /// that points taken over from another in-flight request report
  /// method "store" (their counters land in the store the moment they
  /// are shared) and count toward SweepResponse::InFlightHits.
  /// Per-request timing filled by serve() when the caller passes a
  /// slot; the daemon's --log line reports these.
  struct RequestTelemetry {
    double QueueWaitSeconds = 0.0; ///< Summed over the request's jobs.
    double ComputeSeconds = 0.0;   ///< Summed job compute time.
    double WallSeconds = 0.0;      ///< serve() entry to exit.
  };

  SweepResponse
  serve(const SweepRequest &Req,
        const std::function<bool(const ProgressEvent &)> &OnProgress,
        const std::function<bool()> &IsCancelled = {},
        RequestTelemetry *Tel = nullptr);

  Stats stats() const;

  unsigned threads() const { return PoolThreads; }

  /// Test hook: invoked on the worker thread as it starts a job (after
  /// dequeue, before any work, without the scheduler lock), with the
  /// owning request's serial and the job's point count. Deterministic
  /// fairness and cancellation tests block in here to control the
  /// interleaving. Set before the first serve() call.
  void setJobObserver(std::function<void(uint64_t Serial, size_t Points)> Fn) {
    Observer = std::move(Fn);
  }

private:
  struct RequestState;

  /// One enqueued sub-sweep: a group of the owner's grid points that
  /// must run in one runSweep call to keep their shared pass/stream.
  struct Job {
    RequestState *Owner = nullptr;
    std::vector<size_t> PointIdx; ///< Owner grid indices, input order.
    std::vector<HierarchyConfig> Configs; ///< Parallel to PointIdx.
    telemetry::TimePoint Enqueued; ///< For the queue-wait histogram.
  };

  /// A point some request is currently computing; other requests
  /// needing the same key subscribe instead of recomputing.
  struct PointState {
    /// Waiting (request, grid index) pairs to deliver the result to.
    std::vector<std::pair<RequestState *, size_t>> Subscribers;
  };

  /// Everything serve() shares with the workers; lives on serve()'s
  /// stack (serve never returns while a job can still touch it).
  struct RequestState {
    uint64_t Serial = 0;
    size_t Total = 0;
    const ScopProgram *Program = nullptr;
    SweepOptions SO;
    std::vector<SweepPoint> Points; ///< Filled as results land.
    std::vector<std::string> Keys;  ///< sweepPointKey per grid index.
    std::deque<Job> Queue;          ///< Jobs not yet picked up.
    size_t JobsOutstanding = 0;     ///< Queued + running jobs.
    size_t PendingSubscriptions = 0;
    std::vector<std::string> SubscribedKeys;
    std::vector<ProgressEvent> Ready; ///< Completed, not yet streamed.
    std::condition_variable Cv;       ///< Signaled as results land.
    bool Cancelled = false;
    /// Deadline enforcement (wcs-request deadline_seconds): measured
    /// from serve() entry; on expiry the unshared queued jobs are
    /// dropped like a disconnect, but the request stays alive and
    /// answers with partial results.
    bool HasDeadline = false;
    telemetry::TimePoint Deadline;
    bool DeadlineExpired = false;
    SweepReport Merged; ///< Accumulated per-job pass/partition figures.
    double QueueWaitSeconds = 0.0; ///< Summed as workers dequeue.
    double ComputeSeconds = 0.0;   ///< Summed as jobs complete.
  };

  bool nextJob(std::function<void()> &Task);
  void runJob(Job &J);
  /// Withdraws subscriptions and drops queued jobs no other request
  /// wants, marking their points failed with \p Reason. Shared by the
  /// disconnect-cancellation and deadline-expiry paths; the caller
  /// sets the flag (Cancelled / DeadlineExpired) that says why.
  void cancelLocked(RequestState &RS, const char *Reason);

  ResultStore &Store;
  BatchRunner Runner;
  unsigned PoolThreads = 1;

  mutable std::mutex Mu;
  std::condition_variable WorkCv; ///< Wakes idle workers.
  /// Requests with queued jobs, each present at most once; workers
  /// take the front request's next job and rotate it to the back.
  std::deque<RequestState *> RoundRobin;
  std::unordered_map<std::string, std::unique_ptr<PointState>> InFlight;
  uint64_t LastSerial = 0;
  uint64_t NumActive = 0;
  /// Points inside queued (not yet dequeued) jobs; the admission cap's
  /// measure of backlog. Credited at admission, debited at dequeue and
  /// cancellation.
  uint64_t QueuedPoints = 0;
  uint64_t MaxQueuedPoints = 0; ///< 0 = unbounded.
  /// Total job compute seconds ever; with Counters.PointsComputed this
  /// gives the measured per-point cost behind retry_after_seconds.
  double ComputeSecondsTotal = 0.0;
  bool Stopping = false;
  Stats Counters; ///< Cumulative fields only; snapshots fill the rest.

  std::function<void(uint64_t, size_t)> Observer;
};

} // namespace wcs

#endif // WCS_SERVE_SCHEDULER_H
