//===- cache/ConcreteCache.cpp --------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/cache/ConcreteCache.h"

#include <cassert>

using namespace wcs;

ConcreteHierarchy::ConcreteHierarchy(const HierarchyConfig &Config,
                                     bool PropagateWritebacks)
    : Cfg(Config), Writebacks(PropagateWritebacks) {
  assert(Config.validate().empty() && "invalid hierarchy configuration");
  for (const CacheConfig &C : Config.Levels)
    Levels.emplace_back(C);
}

HierarchyOutcome ConcreteHierarchy::access(BlockId B, bool IsWrite) {
  HierarchyOutcome R;
  ConcreteCache &L1 = Levels.front();
  bool Alloc1 = !(IsWrite && L1.config().WriteAlloc == WriteAllocate::No);
  AccessOutcome O1 = L1.access(B, Alloc1);
  R.L1Hit = O1.Hit;
  if (O1.Hit || O1.Inserted)
    L1.line(O1.Set, O1.Way).Dirty |= IsWrite;

  if (O1.Hit || Levels.size() < 2)
    return R;

  ConcreteCache &L2 = Levels[1];
  bool Alloc2 = !(IsWrite && L2.config().WriteAlloc == WriteAllocate::No);
  R.L2Accessed = true;

  switch (Cfg.Inclusion) {
  case InclusionPolicy::NonInclusiveNonExclusive:
  case InclusionPolicy::Inclusive: {
    // The L2 sees the same block (paper Eq. (24)); inclusively, an L2
    // victim additionally back-invalidates its L1 copy.
    AccessOutcome O2 = L2.access(B, Alloc2);
    R.L2Hit = O2.Hit;
    if (O2.Hit || O2.Inserted)
      L2.line(O2.Set, O2.Way).Dirty |= IsWrite;
    if (Cfg.Inclusion == InclusionPolicy::Inclusive && O2.Inserted &&
        O2.EvictedValid && L1.invalidate(O2.EvictedBlock))
      ++R.BackInvalidations;
    // Optional richer model: a dirty L1 victim is written back to the L2.
    if (Writebacks && O1.Inserted && O1.EvictedDirty) {
      AccessOutcome WB = L2.access(O1.EvictedBlock, /*Allocate=*/true);
      if (WB.Hit || WB.Inserted)
        L2.line(WB.Set, WB.Way).Dirty = true;
      if (Cfg.Inclusion == InclusionPolicy::Inclusive && WB.Inserted &&
          WB.EvictedValid && L1.invalidate(WB.EvictedBlock))
        ++R.BackInvalidations;
      ++R.L2Writebacks;
      if (!WB.Hit)
        ++R.L2WritebackMisses;
    }
    break;
  }
  case InclusionPolicy::Exclusive: {
    if (!Alloc1) {
      // Bypassed write miss: look up the L2 without promoting.
      R.L2Hit = L2.probe(B);
      break;
    }
    // Promotion: the block leaves the L2 (if present) and lives in the
    // L1 only; the L1 victim becomes an L2 resident.
    std::optional<ConcreteLine> InL2 = L2.invalidate(B);
    R.L2Hit = InL2.has_value();
    if (InL2)
      L1.line(O1.Set, O1.Way).Dirty |= InL2->Dirty;
    if (O1.Inserted && O1.EvictedValid) {
      AccessOutcome OV = L2.access(O1.EvictedBlock, /*Allocate=*/true);
      if (OV.Inserted)
        L2.line(OV.Set, OV.Way).Dirty = O1.EvictedDirty;
      else if (OV.Hit)
        L2.line(OV.Set, OV.Way).Dirty |= O1.EvictedDirty;
    }
    break;
  }
  }
  return R;
}

void ConcreteHierarchy::reset() {
  for (ConcreteCache &C : Levels)
    C.reset();
}
