//===- wcs/support/Telemetry.h - Spans, metrics, one clock ------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide telemetry subsystem behind `--trace-json`, the
/// daemon's `--metrics`/`--status` documents, and every wall-time
/// measurement in the engine. Three layers:
///
///  - THE clock. telemetry::now()/secondsSince()/secondsBetween() wrap
///    one std::chrono::steady_clock so trace timestamps, bench
///    samples and every *_seconds field in the result documents live
///    in a single monotonic time domain. Nothing in wcs reads a clock
///    any other way.
///
///  - A span tracer. Span is an RAII scope: construction timestamps,
///    destruction records one completed span -- name, interval,
///    key/value attributes -- into a per-thread ring buffer (fixed
///    capacity, oldest event dropped on overflow, never torn). Rings
///    are registered centrally and drained on demand, from any thread,
///    while other threads keep tracing: drainTrace() merges every
///    ring into a time-sorted snapshot, and writeTraceFile() renders
///    it as Chrome trace-event JSON ("X" complete events, one lane per
///    thread) that chrome://tracing and Perfetto load directly.
///
///  - A metrics registry: named monotonic counters, last-value gauges
///    and fixed-bucket latency histograms, all safe to bump from any
///    thread, plus per-name span aggregates (count, cumulative
///    seconds) fed by the tracer. Registry::snapshot() packages
///    everything as a schema-versioned wcs-metrics v1 document
///    (toJson/fromJson below, rejection pinned in
///    tests/json_reader_test.cpp) which wcs-report renders.
///
/// Everything is ZERO-COST WHEN OFF: tracing and span aggregation sit
/// behind one relaxed atomic flag word, so a disabled Span is a load,
/// a branch, and an empty destructor -- the hotloop bench gate runs
/// with telemetry compiled in and measures no difference. Counters,
/// gauges and histograms are always live; they are only ever touched
/// at request/job/pass granularity, never per access.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_TELEMETRY_H
#define WCS_SUPPORT_TELEMETRY_H

#include "wcs/support/Json.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wcs {
namespace telemetry {

//===----------------------------------------------------------------------===//
// The clock
//===----------------------------------------------------------------------===//

/// The one time source of the whole project. Monotonic: immune to NTP
/// steps and wall-clock changes, which is what makes span intervals
/// and cross-thread timestamp comparisons meaningful.
using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

inline TimePoint now() { return Clock::now(); }

inline double secondsBetween(TimePoint From, TimePoint To) {
  return std::chrono::duration<double>(To - From).count();
}

inline double secondsSince(TimePoint From) {
  return secondsBetween(From, now());
}

//===----------------------------------------------------------------------===//
// Enable flags
//===----------------------------------------------------------------------===//

/// Bit 0: record completed spans into the per-thread rings (the
/// --trace-json path). Bit 1: fold completed spans into the registry's
/// per-name aggregates (the wcs-metrics "spans" section). Either bit
/// makes Span take timestamps; zero makes it a no-op.
enum : unsigned { TraceSpans = 1u, AggregateSpans = 2u };

namespace detail {
inline std::atomic<unsigned> Flags{0};
} // namespace detail

inline unsigned flags() {
  return detail::Flags.load(std::memory_order_relaxed);
}

/// Turns on span recording (TraceSpans | AggregateSpans) with
/// \p RingCapacity events per thread (0 keeps the current capacity,
/// default 8192). Sets the trace epoch on the first call; idempotent
/// afterwards. Threads may already be running.
void enableTracing(size_t RingCapacity = 0);

/// Turns on span aggregation only: spans feed the wcs-metrics
/// document but no ring buffers fill (the daemon's --metrics without
/// --trace-json).
void enableSpanAggregation();

/// Stops span recording and aggregation and discards every ring.
/// Counters/gauges/histograms are untouched. Tests use this to
/// isolate suites; tools never call it.
void disableTracing();

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

/// An RAII traced scope. \p Name must be a string literal (it is
/// stored by pointer until the span completes). Cheap enough to put
/// around every pass, job and request -- but NOT in per-access loops;
/// granularity is the zero-cost contract.
class Span {
public:
  Span() = default;
  explicit Span(const char *Name) {
    F = flags();
    if (F == 0)
      return;
    this->Name = Name;
    Start = now();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key/value attribute ("args" in the trace viewer).
  /// No-op when telemetry is off.
  void arg(const char *Key, std::string Value) {
    if (F != 0)
      Args.emplace_back(Key, std::move(Value));
  }
  void arg(const char *Key, uint64_t Value) {
    if (F != 0)
      Args.emplace_back(Key, std::to_string(Value));
  }

  /// Ends the span now instead of at scope exit; idempotent. For the
  /// occasional scope that outlives the region being measured.
  void end() {
    if (F != 0)
      finish();
    F = 0;
  }

  ~Span() { end(); }

private:
  void finish();

  const char *Name = nullptr;
  TimePoint Start;
  unsigned F = 0;
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Names the calling thread's lane in the trace ("scheduler-worker-2",
/// "conn"...). Cheap; callable before or after tracing is enabled.
void setThreadName(std::string Name);

//===----------------------------------------------------------------------===//
// Draining
//===----------------------------------------------------------------------===//

/// One completed span as drained from the rings.
struct DrainedSpan {
  std::string Name;
  unsigned Tid = 0; ///< Dense per-thread lane id, registration order.
  std::string ThreadName;
  double StartSeconds = 0.0; ///< Since the trace epoch.
  double DurSeconds = 0.0;
  std::vector<std::pair<std::string, std::string>> Args;
};

/// A consistent snapshot of every thread's ring: spans sorted by
/// (Tid, start, -duration) so a parent precedes its children, plus the
/// count of spans lost to ring overflow (oldest-first per thread).
struct TraceSnapshot {
  std::vector<DrainedSpan> Spans;
  uint64_t Dropped = 0;
};

/// Snapshots and CLEARS every ring (Dropped keeps accumulating);
/// tracing continues. Safe to call while other threads record.
TraceSnapshot drainTrace();

/// Renders a snapshot as a Chrome trace-event JSON object
/// ({"traceEvents": [...]}): thread_name metadata records plus one
/// "X" complete event per span, timestamps in microseconds since the
/// trace epoch. Loadable in Perfetto / chrome://tracing as-is.
json::Value traceToJson(const TraceSnapshot &Snap);

/// drainTrace + traceToJson + write to \p Path.
bool writeTraceFile(const std::string &Path, std::string *Err);

} // namespace telemetry

//===----------------------------------------------------------------------===//
// The wcs-metrics document
//===----------------------------------------------------------------------===//

inline constexpr const char MetricsSchemaName[] = "wcs-metrics";
inline constexpr int64_t MetricsSchemaVersion = 1;

/// A point-in-time snapshot of the registry, serialized like every
/// other schema-versioned wcs document. Sections are sorted by name
/// (the registry stores them that way), so two snapshots of the same
/// state dump identically.
struct MetricsDoc {
  std::string Tool; ///< Producing tool ("wcs-serve").
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, double>> Gauges;
  struct Hist {
    std::string Name;
    std::vector<double> Bounds;    ///< Ascending upper bounds.
    std::vector<uint64_t> Counts;  ///< Bounds.size()+1 (last = overflow).
    uint64_t Count = 0;            ///< Total observations.
    double Sum = 0.0;              ///< Sum of observed values.
  };
  std::vector<Hist> Histograms;
  struct SpanAgg {
    std::string Name;
    uint64_t Count = 0;
    double TotalSeconds = 0.0;
  };
  std::vector<SpanAgg> Spans;

  /// Value of counter \p Name, 0 when absent.
  uint64_t counter(const std::string &Name) const;
  /// Histogram \p Name, nullptr when absent.
  const Hist *histogram(const std::string &Name) const;
};

json::Value toJson(const MetricsDoc &D);
bool fromJson(const json::Value &V, MetricsDoc &Out, std::string *Err);
bool writeMetricsFile(const std::string &Path, const MetricsDoc &D,
                      std::string *Err);
bool readMetricsFile(const std::string &Path, MetricsDoc &Out,
                     std::string *Err);

namespace telemetry {

//===----------------------------------------------------------------------===//
// The metrics registry
//===----------------------------------------------------------------------===//

/// A monotonic counter. add() is safe from any thread.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A last-value-wins gauge.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// A fixed-bucket histogram: \p Bounds are ascending upper bounds, and
/// an implicit overflow bucket catches everything above the last one.
/// observe(X) lands X in the FIRST bucket with X <= bound (so a value
/// exactly on a boundary belongs to that boundary's bucket -- pinned
/// by tests). Thread-safe, lock-free.
class Histogram {
public:
  explicit Histogram(std::vector<double> Bounds);

  void observe(double X);

  const std::vector<double> &bounds() const { return Bounds; }
  /// Per-bucket counts, bounds().size()+1 entries.
  std::vector<uint64_t> bucketCounts() const;
  uint64_t count() const { return Num.load(std::memory_order_relaxed); }
  double sum() const;

private:
  std::vector<double> Bounds;
  std::vector<std::atomic<uint64_t>> Counts; ///< Bounds.size()+1.
  std::atomic<uint64_t> Num{0};
  std::atomic<double> Sum{0.0};
};

/// Decade buckets from 100us to 100s -- the default for request/job
/// latency histograms. Sub-100us work is never a serving bottleneck,
/// and a 7-bucket histogram stays readable in wcs-report.
const std::vector<double> &defaultLatencyBounds();

/// The process-wide named-metric registry. Lookup interns the name on
/// first use and returns a reference that stays valid for the process
/// lifetime -- hot paths look up once and keep the reference.
class Registry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// \p Bounds apply on first creation only; later lookups of the same
  /// name ignore them.
  Histogram &histogram(const std::string &Name,
                       const std::vector<double> &Bounds);

  /// Folds one completed span into the per-name aggregates. The
  /// tracer calls this; tests may too.
  void recordSpan(const char *Name, double Seconds);

  /// A consistent snapshot as a wcs-metrics document, sections sorted
  /// by name.
  MetricsDoc snapshot(std::string Tool) const;

  Registry() = default;
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

private:
  struct SpanAgg {
    uint64_t Count = 0;
    double TotalSeconds = 0.0;
  };

  mutable std::mutex Mu;
  /// std::map: snapshot order is name order, deterministically.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::map<std::string, SpanAgg> SpanAggs;
};

/// The one registry every tool and the daemon share.
Registry &registry();

} // namespace telemetry
} // namespace wcs

#endif // WCS_SUPPORT_TELEMETRY_H
