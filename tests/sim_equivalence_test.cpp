//===- tests/sim_equivalence_test.cpp - Warping soundness property --------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The central soundness property of the whole system: warping simulation
// and non-warping simulation produce identical access and miss counts at
// every cache level, for every replacement policy, over randomized
// polyhedral programs (random nests, triangular bounds, guards, strided
// subscripts) and randomized cache geometries.
//
//===----------------------------------------------------------------------===//

#include "wcs/scop/Builder.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <gtest/gtest.h>

#include <random>

using namespace wcs;

namespace {

struct GenConfig {
  unsigned Seed;
  PolicyKind Policy;
  bool TwoLevel;
};

class RandomProgramEquivalence : public ::testing::TestWithParam<GenConfig> {};

/// Generates a random but well-formed SCoP: loop nests of depth 1-3 with
/// constant or triangular bounds, in-bounds affine accesses (so that the
/// block-aligned layout keeps arrays disjoint), occasional guards.
ScopProgram generateProgram(std::mt19937 &Rng) {
  auto Rand = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };

  ScopBuilder B("random");
  // Loop extent cap: subscripts stay within MaxIter*2 + 4.
  const int MaxIter = Rand(6, 14);
  struct Arr {
    unsigned Id;
    unsigned Dims;
  };
  std::vector<Arr> Arrays;
  unsigned NumArrays = Rand(1, 3);
  for (unsigned I = 0; I < NumArrays; ++I) {
    unsigned Dims = Rand(1, 2);
    std::vector<int64_t> Ext(Dims, 2 * MaxIter + 6);
    unsigned Elem = Rand(0, 1) ? 8 : 4;
    Arrays.push_back(
        Arr{B.addArray("A" + std::to_string(I), Elem, std::move(Ext)), Dims});
  }

  // A random affine subscript over the current iterators, guaranteed to
  // stay within [0, 2*MaxIter + 5].
  auto Subscript = [&]() {
    if (B.depth() == 0 || Rand(0, 4) == 0)
      return B.cst(Rand(0, 3));
    unsigned Lvl = Rand(0, static_cast<int>(B.depth()) - 1);
    int Coef = Rand(0, 3) == 0 ? 2 : 1;
    return B.iterAt(Lvl) * Coef + B.cst(Rand(0, 3));
  };
  auto EmitAccess = [&]() {
    const Arr &A = Arrays[Rand(0, static_cast<int>(Arrays.size()) - 1)];
    std::vector<AffineExpr> Subs;
    for (unsigned K = 0; K < A.Dims; ++K)
      Subs.push_back(Subscript());
    B.access(A.Id, Rand(0, 2) == 0 ? AccessKind::Write : AccessKind::Read,
             std::move(Subs));
  };

  unsigned NumNests = Rand(1, 2);
  for (unsigned Nest = 0; Nest < NumNests; ++Nest) {
    unsigned Depth = Rand(1, 3);
    for (unsigned D = 0; D < Depth; ++D) {
      AffineExpr Lo = B.cst(Rand(0, 2));
      // Occasionally triangular: lower bound = an outer iterator.
      if (D > 0 && Rand(0, 2) == 0)
        Lo = B.iterAt(Rand(0, static_cast<int>(B.depth()) - 1));
      B.beginLoop("i" + std::to_string(Nest) + std::to_string(D),
                  std::move(Lo), B.cst(MaxIter));
      if (Rand(0, 3) == 0)
        EmitAccess(); // Access between loop levels.
    }
    unsigned Body = Rand(1, 4);
    for (unsigned S = 0; S < Body; ++S) {
      bool Guarded = Rand(0, 3) == 0;
      if (Guarded)
        B.beginGuard(Constraint::ge(
            B.iterAt(static_cast<int>(B.depth()) - 1) - B.cst(Rand(1, 5))));
      EmitAccess();
      if (Guarded)
        B.endGuard();
    }
    for (unsigned D = 0; D < Depth; ++D)
      B.endLoop();
  }
  std::string Err;
  ScopProgram P = B.finish(&Err);
  EXPECT_EQ(Err, "");
  return P;
}

HierarchyConfig randomHierarchy(std::mt19937 &Rng, PolicyKind K,
                                bool TwoLevel) {
  auto Rand = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  CacheConfig L1;
  L1.BlockBytes = 64;
  L1.Assoc = 1u << Rand(0, 2);             // 1, 2 or 4 ways.
  unsigned Sets = 1u << Rand(0, 3);        // 1..8 sets.
  L1.SizeBytes = static_cast<uint64_t>(L1.Assoc) * Sets * 64;
  L1.Policy = K;
  if (!TwoLevel)
    return HierarchyConfig::singleLevel(L1);
  CacheConfig L2 = L1;
  L2.SizeBytes *= 1u << Rand(1, 2); // 2x or 4x the sets.
  L2.Policy = K == PolicyKind::Plru ? PolicyKind::QuadAgeLru : K;
  return HierarchyConfig::twoLevel(L1, L2);
}

TEST_P(RandomProgramEquivalence, WarpingEqualsConcrete) {
  GenConfig G = GetParam();
  std::mt19937 Rng(G.Seed);
  for (int Trial = 0; Trial < 12; ++Trial) {
    ScopProgram P = generateProgram(Rng);
    HierarchyConfig H = randomHierarchy(Rng, G.Policy, G.TwoLevel);
    // Aggressive warping bounds to exercise the machinery on small loops.
    SimOptions O;
    O.Warp.MinProbesForLearning = 1000000; // Never disable probing.
    O.Warp.EnableProfitGuard = false;

    ConcreteSimulator Ref(P, H);
    WarpingSimulator Warp(P, H, O);
    SimStats R = Ref.run(), W = Warp.run();

    ASSERT_EQ(W.totalAccesses(), R.totalAccesses())
        << "trial " << Trial << "\n"
        << P.str() << H.str();
    ASSERT_EQ(W.Level[0].Misses, R.Level[0].Misses)
        << "trial " << Trial << "\n"
        << P.str() << H.str();
    if (G.TwoLevel) {
      ASSERT_EQ(W.Level[1].Accesses, R.Level[1].Accesses)
          << "trial " << Trial << "\n"
          << P.str() << H.str();
      ASSERT_EQ(W.Level[1].Misses, R.Level[1].Misses)
          << "trial " << Trial << "\n"
          << P.str() << H.str();
    }
    ASSERT_EQ(W.SimulatedAccesses + W.WarpedAccesses, W.totalAccesses());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomProgramEquivalence,
    ::testing::Values(GenConfig{101, PolicyKind::Lru, false},
                      GenConfig{102, PolicyKind::Lru, true},
                      GenConfig{201, PolicyKind::Fifo, false},
                      GenConfig{202, PolicyKind::Fifo, true},
                      GenConfig{301, PolicyKind::Plru, false},
                      GenConfig{302, PolicyKind::Plru, true},
                      GenConfig{401, PolicyKind::QuadAgeLru, false},
                      GenConfig{402, PolicyKind::QuadAgeLru, true}),
    [](const ::testing::TestParamInfo<GenConfig> &Info) {
      return std::string(policyName(Info.param.Policy)) +
             (Info.param.TwoLevel ? "_L2" : "_L1") + "_s" +
             std::to_string(Info.param.Seed);
    });

/// Dense streaming programs exercise the rotating-match path heavily;
/// run them over every policy with several block/element ratios.
class StreamEquivalence
    : public ::testing::TestWithParam<std::tuple<PolicyKind, int>> {};

TEST_P(StreamEquivalence, RotatingWarpsAreExact) {
  auto [K, ElemBytes] = GetParam();
  ScopBuilder B("stream");
  unsigned A = B.addArray("A", ElemBytes, {6000});
  unsigned C = B.addArray("C", ElemBytes, {6000});
  B.beginLoop("i", B.cst(2), B.cst(5500));
  B.read(A, {B.iter("i") - B.cst(2)});
  B.read(A, {B.iter("i") + B.cst(1)});
  B.write(C, {B.iter("i")});
  B.endLoop();
  std::string Err;
  ScopProgram P = B.finish(&Err);
  ASSERT_EQ(Err, "");

  CacheConfig Cfg;
  Cfg.BlockBytes = 64;
  Cfg.Assoc = 4;
  Cfg.SizeBytes = 8 * 4 * 64;
  Cfg.Policy = K;
  HierarchyConfig H = HierarchyConfig::singleLevel(Cfg);
  ConcreteSimulator Ref(P, H);
  WarpingSimulator Warp(P, H);
  SimStats R = Ref.run(), W = Warp.run();
  EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses) << policyName(K);
  EXPECT_EQ(W.totalAccesses(), R.totalAccesses());
  EXPECT_GE(W.Warps, 1u) << "dense streams must warp under "
                         << policyName(K);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, StreamEquivalence,
    ::testing::Combine(::testing::Values(PolicyKind::Lru, PolicyKind::Fifo,
                                         PolicyKind::Plru,
                                         PolicyKind::QuadAgeLru),
                       ::testing::Values(4, 8, 64)),
    [](const ::testing::TestParamInfo<std::tuple<PolicyKind, int>> &Info) {
      return std::string(policyName(std::get<0>(Info.param))) + "_e" +
             std::to_string(std::get<1>(Info.param));
    });

} // namespace
