//===- wcs/trace/TraceSimulator.h - Trace-driven simulation -----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A traditional trace-driven cache simulator in the style of Dinero IV
/// (the paper's baseline in appendix B and the accuracy experiments of
/// Sec. 6.4). It consumes an explicit address trace, optionally includes
/// scalar accesses and optionally propagates dirty write-backs to the L2
/// (the richer "reference" model used as measured ground truth in the
/// accuracy experiments, Figs. 11/13/14).
///
//===----------------------------------------------------------------------===//

#ifndef WCS_TRACE_TRACESIMULATOR_H
#define WCS_TRACE_TRACESIMULATOR_H

#include "wcs/cache/ConcreteCache.h"
#include "wcs/sim/SimStats.h"
#include "wcs/trace/TraceGenerator.h"

namespace wcs {

/// Options of trace-driven simulation.
struct TraceSimOptions {
  bool IncludeScalars = true;      ///< Dinero counts every access.
  bool PropagateWritebacks = true; ///< Dirty L1 victims access the L2.
};

/// Result of a trace-driven run.
struct TraceSimResult {
  SimStats Stats;
  uint64_t Writebacks = 0;       ///< L1 victim writes issued to the L2.
  uint64_t WritebackMisses = 0;  ///< Of those, L2 misses.
};

/// Trace-driven simulator over a concrete hierarchy.
class TraceSimulator {
public:
  TraceSimulator(const HierarchyConfig &Cache, TraceSimOptions Options);

  /// Feeds one record.
  void access(const TraceRecord &R);

  /// Runs the full trace of \p Program through a chunked generator
  /// (paying for trace materialization, like a real trace-driven
  /// pipeline) and returns the counters. Timing covers generation plus
  /// consumption.
  TraceSimResult runOnProgram(const ScopProgram &Program);

  const TraceSimResult &result() const { return Result; }

private:
  ConcreteHierarchy Cache;
  TraceSimOptions Options;
  TraceSimResult Result;
  unsigned BlockShift;
  unsigned BlockBytes;
};

} // namespace wcs

#endif // WCS_TRACE_TRACESIMULATOR_H
