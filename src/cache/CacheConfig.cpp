//===- cache/CacheConfig.cpp ----------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/cache/CacheConfig.h"

#include "wcs/support/MathUtil.h"
#include "wcs/support/StringUtil.h"

#include <sstream>

using namespace wcs;

const char *wcs::policyName(PolicyKind K) {
  switch (K) {
  case PolicyKind::Lru:
    return "LRU";
  case PolicyKind::Fifo:
    return "FIFO";
  case PolicyKind::Plru:
    return "PLRU";
  case PolicyKind::QuadAgeLru:
    return "QLRU";
  }
  return "?";
}

bool wcs::parsePolicyName(const std::string &Name, PolicyKind &Out) {
  std::string L = toLowerAscii(Name);
  if (L == "lru")
    Out = PolicyKind::Lru;
  else if (L == "fifo")
    Out = PolicyKind::Fifo;
  else if (L == "plru")
    Out = PolicyKind::Plru;
  else if (L == "qlru" || L == "quadagelru")
    Out = PolicyKind::QuadAgeLru;
  else
    return false;
  return true;
}

bool wcs::parseInclusionName(const std::string &Name, InclusionPolicy &Out) {
  std::string L = toLowerAscii(Name);
  if (L == "nine")
    Out = InclusionPolicy::NonInclusiveNonExclusive;
  else if (L == "inclusive")
    Out = InclusionPolicy::Inclusive;
  else if (L == "exclusive")
    Out = InclusionPolicy::Exclusive;
  else
    return false;
  return true;
}

std::string CacheConfig::validate() const {
  if (BlockBytes == 0 || !isPowerOf2(BlockBytes))
    return "block size must be a power of two";
  // LRU state is purely positional (recency order of the ways), so any
  // associativity simulates correctly; 4096 lines covers the largest
  // fully-associative capacity the sweep's HayStack-model points use.
  // The other policies keep metadata in fixed-width per-set words
  // (PLRU tree bits, 2-bit ages), whose layouts cap the way count.
  unsigned MaxAssoc = Policy == PolicyKind::Lru ? 4096 : 64;
  if (Assoc == 0 || Assoc > MaxAssoc)
    return Policy == PolicyKind::Lru ? "associativity must be in [1, 4096]"
                                     : "associativity must be in [1, 64]";
  if (SizeBytes == 0 || SizeBytes % (static_cast<uint64_t>(Assoc) *
                                     BlockBytes) != 0)
    return "cache size must be a multiple of associativity * block size";
  if (!isPowerOf2(numSets()))
    return "number of sets must be a power of two (modulo placement)";
  if (Policy == PolicyKind::Plru && !isPowerOf2(Assoc))
    return "PLRU requires power-of-two associativity";
  return "";
}

std::string CacheConfig::str() const {
  std::ostringstream OS;
  if (SizeBytes % 1024 == 0)
    OS << SizeBytes / 1024 << "KiB";
  else
    OS << SizeBytes << "B";
  OS << " " << Assoc << "-way " << policyName(Policy) << " " << BlockBytes
     << "B-lines"
     << (WriteAlloc == WriteAllocate::Yes ? " WA" : " NWA");
  return OS.str();
}

CacheConfig CacheConfig::testSystemL1() {
  return CacheConfig{32 * 1024, 8, 64, PolicyKind::Plru, WriteAllocate::Yes};
}

CacheConfig CacheConfig::testSystemL2() {
  return CacheConfig{1024 * 1024, 16, 64, PolicyKind::QuadAgeLru,
                     WriteAllocate::Yes};
}

CacheConfig CacheConfig::scaledL1() {
  return CacheConfig{4 * 1024, 8, 64, PolicyKind::Plru, WriteAllocate::Yes};
}

CacheConfig CacheConfig::scaledL2() {
  return CacheConfig{32 * 1024, 16, 64, PolicyKind::QuadAgeLru,
                     WriteAllocate::Yes};
}

HierarchyConfig HierarchyConfig::singleLevel(CacheConfig L1) {
  HierarchyConfig H;
  H.Levels.push_back(L1);
  return H;
}

HierarchyConfig HierarchyConfig::twoLevel(CacheConfig L1, CacheConfig L2,
                                          InclusionPolicy Inclusion) {
  HierarchyConfig H;
  H.Levels.push_back(L1);
  H.Levels.push_back(L2);
  H.Inclusion = Inclusion;
  return H;
}

const char *wcs::inclusionName(InclusionPolicy P) {
  switch (P) {
  case InclusionPolicy::NonInclusiveNonExclusive:
    return "NINE";
  case InclusionPolicy::Inclusive:
    return "inclusive";
  case InclusionPolicy::Exclusive:
    return "exclusive";
  }
  return "?";
}

std::string HierarchyConfig::validate() const {
  if (Levels.empty() || Levels.size() > 2)
    return "hierarchy must have one or two levels";
  for (const CacheConfig &C : Levels) {
    std::string E = C.validate();
    if (!E.empty())
      return E;
  }
  if (Levels.size() == 2) {
    if (Levels[0].BlockBytes != Levels[1].BlockBytes)
      return "all levels must share one block size";
    if (Levels[1].numSets() % Levels[0].numSets() != 0)
      return "L2 set count must be a multiple of the L1 set count";
    if (Inclusion == InclusionPolicy::Inclusive &&
        Levels[1].WriteAlloc == WriteAllocate::No)
      return "an inclusive L2 must be write-allocate";
  }
  return "";
}

std::string HierarchyConfig::str() const {
  std::ostringstream OS;
  for (size_t I = 0; I < Levels.size(); ++I) {
    if (I != 0)
      OS << " + ";
    OS << "L" << I + 1 << "[" << Levels[I].str() << "]";
  }
  if (Levels.size() > 1 &&
      Inclusion != InclusionPolicy::NonInclusiveNonExclusive)
    OS << " (" << inclusionName(Inclusion) << ")";
  return OS.str();
}
