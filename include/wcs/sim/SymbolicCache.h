//===- wcs/sim/SymbolicCache.h - Symbolic cache states ----------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic cache states (paper Sec. 5.2): every cache line carries, in
/// addition to its concrete block, a *tag* identifying the access-node
/// instance (node id + iteration vector) that last touched it. Tags are
/// the symbolic memory blocks of the paper: interpreting a tag under its
/// iteration vector yields the concrete block, and shifting the iteration
/// vector re-concretizes the line after a warp. Tags are refreshed on
/// every hit (the paper's SymUpSet) and adapted lazily rather than on
/// every iterator increment (paper footnote 2): they store absolute
/// iteration vectors and are relativized on demand by the warp engine.
///
/// SymbolicHierarchy is the one/two-level composition with the update of
/// paper Eq. (24): the L2 is accessed exactly on L1 misses.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SIM_SYMBOLICCACHE_H
#define WCS_SIM_SYMBOLICCACHE_H

#include "wcs/cache/SetAssocCache.h"
#include "wcs/scop/Program.h"
#include "wcs/support/IterVec.h"

#include <vector>

namespace wcs {

/// A symbolic cache line: concrete block + installing access instance.
struct SymLine {
  BlockId Block = kInvalidBlock;
  bool Dirty = false;
  int32_t NodeId = -1; ///< AccessNode::Id of the last touch; -1 if none.
  IterVec Iter;        ///< Iteration vector of the last touch.
};

/// The symbolic payload beyond (Block, Dirty) lives in the cache's tag
/// array: the struct-of-arrays layout keeps the per-access block-id scan
/// free of the (comparatively fat) iteration vectors.
template <>
struct CacheLineTraits<SymLine> {
  static constexpr bool HasTag = true;
  struct Tag {
    int32_t NodeId = -1;
    IterVec Iter;
  };
  static void packTag(Tag &T, const SymLine &L) {
    T.NodeId = L.NodeId;
    T.Iter = L.Iter;
  }
  static void unpackTag(SymLine &L, const Tag &T) {
    L.NodeId = T.NodeId;
    L.Iter = T.Iter;
  }
};

using SymbolicCache = SetAssocCache<SymLine>;
using SymTag = SymbolicCache::TagT;

/// Result of one symbolic hierarchy access.
struct SymAccessOutcome {
  bool L1Hit = false;
  bool L2Accessed = false;
  bool L2Hit = false;
  /// On an L1 hit: the way the line occupied before the policy update
  /// (under LRU the per-set stack distance; see AccessOutcome::HitDepth).
  unsigned L1HitDepth = 0;
};

/// One- or two-level symbolic hierarchy with Eq. (24) semantics.
/// Copyable: warp snapshots are whole-object copies.
class SymbolicHierarchy {
public:
  explicit SymbolicHierarchy(const HierarchyConfig &Config);

  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }
  SymbolicCache &level(unsigned I) { return Levels[I]; }
  const SymbolicCache &level(unsigned I) const { return Levels[I]; }

  /// Performs one access by node \p NodeId at iteration \p Iter touching
  /// block \p B, refreshing the tags of all touched lines.
  SymAccessOutcome access(BlockId B, bool IsWrite, int32_t NodeId,
                          const IterVec &Iter);

private:
  InclusionPolicy Inclusion = InclusionPolicy::NonInclusiveNonExclusive;
  std::vector<SymbolicCache> Levels;
};

} // namespace wcs

#endif // WCS_SIM_SYMBOLICCACHE_H
