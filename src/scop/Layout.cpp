//===- scop/Layout.cpp ----------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory-layout assignment. Arrays are laid out sequentially, each
/// aligned to a configurable boundary (page-sized by default, mirroring
/// how allocators place large arrays); scalars are packed together in a
/// dedicated region. Alignment to at least the cache-block size
/// guarantees that distinct arrays never share a memory block, which the
/// warping access-mapping construction relies on (distinct arrays can
/// then carry independent block shifts).
///
//===----------------------------------------------------------------------===//

#include "wcs/scop/Program.h"

#include "wcs/support/MathUtil.h"

#include <cassert>

using namespace wcs;

static int64_t alignUp(int64_t X, int64_t A) { return ceilDiv(X, A) * A; }

void wcs::assignLayout(ScopProgram &P, int64_t AlignBytes) {
  assert(AlignBytes >= 64 && isPowerOf2(static_cast<uint64_t>(AlignBytes)) &&
         "alignment must be a power of two >= the cache block size");
  // Start away from address zero so that "block 0" is not special.
  int64_t Next = AlignBytes;
  // Arrays first, in declaration order.
  for (ArrayInfo &A : P.mutableArrays()) {
    if (A.isScalar())
      continue;
    A.BaseAddr = alignUp(Next, AlignBytes);
    Next = A.BaseAddr + A.byteSize();
  }
  // Scalars packed together in one fresh region.
  int64_t ScalarNext = alignUp(Next, AlignBytes);
  for (ArrayInfo &A : P.mutableArrays()) {
    if (!A.isScalar())
      continue;
    A.BaseAddr = ScalarNext;
    ScalarNext += A.ElemBytes;
  }
}
