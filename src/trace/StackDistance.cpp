//===- trace/StackDistance.cpp --------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/trace/StackDistance.h"

#include "wcs/support/MathUtil.h"
#include "wcs/trace/TraceGenerator.h"

#include <chrono>

using namespace wcs;

StackDistanceProfiler::StackDistanceProfiler(unsigned BlockBytes)
    : BlockShift(log2Exact(BlockBytes)) {
  Bit.resize(1024, 0);
}

void StackDistanceProfiler::bitAdd(uint64_t Pos, int64_t Val) {
  // Grow by doubling. A new power-of-two node P covers the range (0, P],
  // which contains every existing element, so it must start at the
  // current tree total (all other new nodes cover only new, empty
  // positions).
  while (Pos >= Bit.size()) {
    size_t Old = Bit.size();
    Bit.resize(Old * 2, 0);
    Bit[Old] = TreeTotal;
  }
  TreeTotal += Val;
  for (uint64_t I = Pos; I < Bit.size(); I += I & (~I + 1))
    Bit[I] += Val;
}

int64_t StackDistanceProfiler::bitPrefix(uint64_t Pos) const {
  if (Pos >= Bit.size())
    Pos = Bit.size() - 1;
  int64_t S = 0;
  for (uint64_t I = Pos; I > 0; I -= I & (~I + 1))
    S += Bit[I];
  return S;
}

void StackDistanceProfiler::accessBlock(BlockId B) {
  ++Time; // 1-based timestamps.
  auto It = LastAccess.find(B);
  if (It == LastAccess.end()) {
    ++Colds;
  } else {
    // Distinct blocks touched strictly between the previous access to B
    // and now = number of "last access" markers in (last, now).
    uint64_t D = static_cast<uint64_t>(bitPrefix(Time - 1) -
                                       bitPrefix(It->second));
    if (Hist.size() <= D)
      Hist.resize(D + 1, 0);
    ++Hist[D];
    bitAdd(It->second, -1);
  }
  bitAdd(Time, +1);
  LastAccess[B] = Time;
}

uint64_t StackDistanceProfiler::missesForAssoc(uint64_t Assoc) const {
  uint64_t M = Colds;
  for (uint64_t D = Assoc; D < Hist.size(); ++D)
    M += Hist[D];
  return M;
}

StackDistanceProfiler wcs::profileProgram(const ScopProgram &Program,
                                          unsigned BlockBytes,
                                          bool IncludeScalars,
                                          double *Seconds) {
  auto Start = std::chrono::steady_clock::now();
  StackDistanceProfiler Prof(BlockBytes);
  TraceOptions TO;
  TO.IncludeScalars = IncludeScalars;
  generateTrace(Program, TO,
                [&](const TraceRecord &R) { Prof.accessAddr(R.Addr); });
  if (Seconds)
    *Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
  return Prof;
}
