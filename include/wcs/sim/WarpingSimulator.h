//===- wcs/sim/WarpingSimulator.h - Algorithm 2 ----------------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Warping symbolic cache simulation (paper Algorithm 2). Each loop-node
/// activation keeps a hash map of the symbolic cache states reached at
/// the top of its iterations (fresh per activation: warping is attempted
/// only across iterations of one loop while the enclosing iterators are
/// fixed, as in the paper). When the current state's key recurs, the
/// engine verifies the match under set rotations, bounds the number of
/// warpable iterations (IterationsToWarp), and fast-forwards: iteration
/// counter, per-level access/miss counters and the symbolic state all
/// advance analytically.
///
/// Storage discipline: the first occurrence of a key records only a
/// marker; a snapshot (full symbolic state copy) is taken on the second
/// occurrence; later occurrences attempt warps against the stored
/// snapshots. Loops whose activations repeatedly probe without ever
/// warping stop probing (see WarpConfig), keeping non-warping kernels at
/// ordinary-simulation cost.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SIM_WARPINGSIMULATOR_H
#define WCS_SIM_WARPINGSIMULATOR_H

#include "wcs/scop/Program.h"
#include "wcs/sim/SimConfig.h"
#include "wcs/sim/SimStats.h"
#include "wcs/sim/SymbolicCache.h"
#include "wcs/sim/WarpEngine.h"

#include <memory>

namespace wcs {

/// Warping symbolic simulator (paper Algorithm 2).
class WarpingSimulator {
public:
  WarpingSimulator(const ScopProgram &Program, const HierarchyConfig &Cache,
                   SimOptions Options = SimOptions());

  /// Simulates the whole program on an initially empty hierarchy.
  SimStats run();

  /// The symbolic hierarchy state after run().
  const SymbolicHierarchy &hierarchy() const { return Cache; }

  ~WarpingSimulator();

private:
  void runNode(const Node *N, IterVec &Iter);
  void runLoop(const LoopNode *L, IterVec &Iter);
  void runAccess(const AccessNode *A, const IterVec &Iter);

  /// Per-nesting-depth activation scratch (hash map + snapshot storage),
  /// pooled across activations to avoid allocation churn in loops with
  /// many short activations.
  struct Activation;
  Activation &activationAtDepth(unsigned Depth);

  const ScopProgram &Program;
  HierarchyConfig CacheCfg;
  SymbolicHierarchy Cache;
  WarpEngine Engine;
  SimOptions Options;
  SimStats Stats;
  unsigned BlockShift;
  /// Per-loop learning state: consecutive fully-probed activations with
  /// no warp; probing disabled once the threshold is reached.
  std::vector<unsigned> LoopFailures;
  std::vector<uint8_t> LoopDisabled;
  /// Profit-guard accounting (in access-equivalents) per loop node.
  std::vector<uint64_t> ProbeCost;
  std::vector<uint64_t> ProbeGain;
  std::vector<unsigned> GuardedActivations;
  /// Per-loop viable-delta unit (-1 = not yet computed; 0 = never warps).
  std::vector<int64_t> DeltaUnit;
  uint64_t TotalLines = 0;
  std::vector<std::unique_ptr<Activation>> Pools;
};

} // namespace wcs

#endif // WCS_SIM_WARPINGSIMULATOR_H
