//===- bench/micro_ops.cpp - Component micro-benchmarks -------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// google-benchmark microbenchmarks of the hot components: concrete cache
// accesses per policy, symbolic (tagged) accesses, warp state-key
// hashing, Fourier-Motzkin minimization, and stack-distance updates.
// These quantify the constant factors behind the figure harnesses.
//
//===----------------------------------------------------------------------===//

#include "wcs/cache/ConcreteCache.h"
#include "wcs/poly/FourierMotzkin.h"
#include "wcs/polybench/Polybench.h"
#include "wcs/sim/SymbolicCache.h"
#include "wcs/sim/WarpEngine.h"
#include "wcs/trace/StackDistance.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace wcs;

namespace {

CacheConfig microCache(PolicyKind K) {
  CacheConfig C;
  C.SizeBytes = 4 * 1024;
  C.Assoc = 8;
  C.BlockBytes = 64;
  C.Policy = K;
  return C;
}

std::vector<BlockId> streamTrace(size_t N) {
  std::mt19937 Rng(42);
  std::vector<BlockId> T(N);
  BlockId Cur = 0;
  for (size_t I = 0; I < N; ++I) {
    if (Rng() % 4 == 0)
      Cur = Rng() % 256;
    T[I] = Cur++;
  }
  return T;
}

void BM_ConcreteAccess(benchmark::State &State) {
  PolicyKind K = static_cast<PolicyKind>(State.range(0));
  ConcreteCache C(microCache(K));
  std::vector<BlockId> T = streamTrace(4096);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(C.access(T[I], true).Hit);
    I = (I + 1) & 4095;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ConcreteAccess)
    ->Arg(static_cast<int>(PolicyKind::Lru))
    ->Arg(static_cast<int>(PolicyKind::Fifo))
    ->Arg(static_cast<int>(PolicyKind::Plru))
    ->Arg(static_cast<int>(PolicyKind::QuadAgeLru));

void BM_SymbolicAccess(benchmark::State &State) {
  HierarchyConfig H = HierarchyConfig::twoLevel(
      microCache(PolicyKind::Plru),
      CacheConfig{32 * 1024, 16, 64, PolicyKind::QuadAgeLru,
                  WriteAllocate::Yes});
  SymbolicHierarchy C(H);
  std::vector<BlockId> T = streamTrace(4096);
  IterVec Iter{0, 0};
  size_t I = 0;
  for (auto _ : State) {
    Iter[1] = static_cast<int64_t>(I);
    benchmark::DoNotOptimize(C.access(T[I], false, 3, Iter).L1Hit);
    I = (I + 1) & 4095;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SymbolicAccess);

void BM_StateKey(benchmark::State &State) {
  std::string Err;
  ScopProgram P = buildKernel("jacobi-2d", ProblemSize::Small, &Err);
  HierarchyConfig H = HierarchyConfig::singleLevel(microCache(
      PolicyKind::Plru));
  SymbolicHierarchy C(H);
  SimOptions O;
  WarpEngine Eng(P, H, O);
  // Populate the cache with tagged lines.
  const AccessNode *A = P.accesses()[0];
  for (int64_t I = 0; I < 4096; ++I)
    C.access(A->Address.eval(IterVec{0, 1 + I % 40, 1 + I % 40}) >> 6,
             false, A->Id, IterVec{0, 1 + I % 40, 1 + I % 40});
  WarpScope S;
  S.Loop = P.loops()[1]; // The i-loop.
  S.Prefix = IterVec{0};
  S.Hi = 40;
  for (auto _ : State)
    benchmark::DoNotOptimize(Eng.stateKey(C, S));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_StateKey);

void BM_FourierMotzkinMinimize(benchmark::State &State) {
  for (auto _ : State) {
    LinearSystem Sys(3);
    Sys.addGE({1, 0, 0}, -1);
    Sys.addGE({3, -1, 0}, 0);
    Sys.addGE({0, 1, -2}, 5);
    Sys.addGE({0, -1, 1}, 40);
    Sys.addGE({0, 0, 1}, 0);
    Sys.addGE({0, 0, -1}, 100);
    std::optional<Rational> Min;
    benchmark::DoNotOptimize(Sys.minimize(0, Min));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_FourierMotzkinMinimize);

void BM_StackDistance(benchmark::State &State) {
  std::vector<BlockId> T = streamTrace(1 << 16);
  StackDistanceProfiler Prof;
  size_t I = 0;
  for (auto _ : State) {
    Prof.accessBlock(T[I]);
    I = (I + 1) & ((1 << 16) - 1);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_StackDistance);

} // namespace

BENCHMARK_MAIN();
