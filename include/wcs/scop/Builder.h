//===- wcs/scop/Builder.h - Programmatic SCoP construction ------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fluent API for constructing SCoP trees directly, used by tests,
/// examples and the randomized program generator. The frontend library
/// offers the more convenient path of parsing the C-like loop-nest
/// dialect; both produce the same ScopProgram.
///
/// Example (the paper's Fig. 1 stencil):
/// \code
///   ScopBuilder B("stencil1d");
///   unsigned A = B.addArray("A", 4, {1000});
///   unsigned Bv = B.addArray("B", 4, {1000});
///   B.beginLoop("i", B.cst(1), B.cst(998));
///   B.read(A, {B.iter("i") - B.cst(1)});
///   B.read(A, {B.iter("i")});
///   B.write(Bv, {B.iter("i") - B.cst(1)});
///   B.endLoop();
///   ScopProgram P = B.finish();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SCOP_BUILDER_H
#define WCS_SCOP_BUILDER_H

#include "wcs/scop/Program.h"

#include <string>
#include <vector>

namespace wcs {

/// Incremental builder for ScopPrograms.
class ScopBuilder {
public:
  explicit ScopBuilder(std::string Name);

  /// Declares an array with the given extents; returns its id.
  unsigned addArray(std::string Name, unsigned ElemBytes,
                    std::vector<int64_t> DimSizes);
  /// Declares a scalar (zero-dimensional array); returns its id.
  unsigned addScalar(std::string Name, unsigned ElemBytes = 8);

  /// The current loop-nest depth.
  unsigned depth() const { return static_cast<unsigned>(OpenLoops.size()); }

  /// An AffineExpr denoting the named enclosing iterator.
  AffineExpr iter(const std::string &Name) const;
  /// An AffineExpr denoting the iterator at nesting level \p Level.
  AffineExpr iterAt(unsigned Level) const;
  /// A constant AffineExpr at the current depth.
  AffineExpr cst(int64_t C) const;

  /// Opens a loop `for Name = Lo .. Hi` (inclusive bounds; expressions
  /// over the enclosing iterators).
  void beginLoop(std::string Name, AffineExpr Lo, AffineExpr Hi);
  /// Adds an extra bound constraint to the innermost open loop (for
  /// domains with multiple lower/upper bounds).
  void addLoopConstraint(Constraint C);
  void endLoop();

  /// Opens a guard: statements until endGuard execute only where
  /// `C` holds. Guards nest.
  void beginGuard(Constraint C);
  void endGuard();

  /// Emits an access node at the current position.
  void access(unsigned ArrayId, AccessKind K,
              std::vector<AffineExpr> Subscripts);
  void read(unsigned ArrayId, std::vector<AffineExpr> Subscripts) {
    access(ArrayId, AccessKind::Read, std::move(Subscripts));
  }
  void write(unsigned ArrayId, std::vector<AffineExpr> Subscripts) {
    access(ArrayId, AccessKind::Write, std::move(Subscripts));
  }
  /// Emits a scalar read/write.
  void readScalar(unsigned ArrayId) { read(ArrayId, {}); }
  void writeScalar(unsigned ArrayId) { write(ArrayId, {}); }

  /// Closes construction: assigns the layout, finalizes and validates.
  /// On failure, returns an empty program and sets \p Error.
  ScopProgram finish(std::string *Error = nullptr, int64_t AlignBytes = 4096);

private:
  void appendNode(std::unique_ptr<Node> N);

  ScopProgram P;
  std::vector<LoopNode *> OpenLoops;
  std::vector<std::string> IterNames;
  /// Current domain over depth() dimensions (loop bounds + open guards).
  ConvexSet CurDomain{0};
  /// Saved domains for each open loop / guard scope.
  std::vector<ConvexSet> DomainStack;
  unsigned OpenGuards = 0;
  std::string DeferredError;
};

} // namespace wcs

#endif // WCS_SCOP_BUILDER_H
