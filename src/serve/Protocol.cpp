//===- src/serve/Protocol.cpp - wcs-serve wire protocol -------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/Protocol.h"

#include "wcs/support/FaultInjection.h"
#include "wcs/support/Hashing.h"
#include "wcs/support/JsonReader.h"
#include "wcs/support/Telemetry.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace wcs;
using namespace wcs::jsonfield;
using json::Value;

Value wcs::toJson(const ProgressEvent &E) {
  Value V = Value::object();
  V.set("schema", ProgressSchemaName);
  V.set("schema_version", ServeProtocolVersion);
  V.set("request", E.Request);
  V.set("point", static_cast<uint64_t>(E.Point));
  V.set("total", static_cast<uint64_t>(E.Total));
  V.set("cache", E.Cache);
  V.set("method", sweepMethodName(E.Method));
  V.set("ok", E.Ok);
  return V;
}

bool wcs::fromJson(const Value &V, ProgressEvent &Out, std::string *Err) {
  if (!needSchema(V, ProgressSchemaName, ServeProtocolVersion, Err))
    return false;
  ProgressEvent E;
  uint64_t Point, Total;
  std::string Method;
  // "request" joined the v1 schema with the concurrent scheduler:
  // optional on read (0, what serial daemons emitted), always written.
  if (!optUInt(V, "request", E.Request, Err) ||
      !needUInt(V, "point", Point, Err) ||
      !needUInt(V, "total", Total, Err) ||
      !needString(V, "cache", E.Cache, Err) ||
      !needString(V, "method", Method, Err) ||
      !needBool(V, "ok", E.Ok, Err))
    return false;
  if (!parseSweepMethodName(Method, E.Method))
    return failMsg(Err, "unknown method '" + Method + "'");
  E.Point = static_cast<size_t>(Point);
  E.Total = static_cast<size_t>(Total);
  Out = std::move(E);
  return true;
}

Value wcs::toJson(const StatusDoc &D) {
  Value V = Value::object();
  V.set("schema", StatusSchemaName);
  V.set("schema_version", StatusSchemaVersion);
  V.set("requests_served", D.RequestsServed);
  V.set("points_computed", D.PointsComputed);
  V.set("store_hits", D.StoreHits);
  V.set("inflight_hits", D.InFlightHits);
  V.set("cancelled_jobs", D.CancelledJobs);
  V.set("active_requests", D.ActiveRequests);
  V.set("queued_jobs", D.QueuedJobs);
  V.set("store_entries", D.StoreEntries);
  V.set("active_connections", D.ActiveConnections);
  V.set("max_connections", D.MaxConnections);
  V.set("uptime_seconds", D.UptimeSeconds);
  V.set("deadline_expired", D.DeadlineExpired);
  V.set("shed_requests", D.ShedRequests);
  V.set("queued_points", D.QueuedPoints);
  return V;
}

bool wcs::fromJson(const Value &V, StatusDoc &Out, std::string *Err) {
  if (!needSchema(V, StatusSchemaName, StatusSchemaVersion, Err))
    return false;
  StatusDoc D;
  if (!needUInt(V, "requests_served", D.RequestsServed, Err) ||
      !needUInt(V, "points_computed", D.PointsComputed, Err) ||
      !needUInt(V, "store_hits", D.StoreHits, Err) ||
      !needUInt(V, "inflight_hits", D.InFlightHits, Err) ||
      !needUInt(V, "cancelled_jobs", D.CancelledJobs, Err) ||
      !needUInt(V, "active_requests", D.ActiveRequests, Err) ||
      !needUInt(V, "queued_jobs", D.QueuedJobs, Err) ||
      !needUInt(V, "store_entries", D.StoreEntries, Err) ||
      !needUInt(V, "active_connections", D.ActiveConnections, Err) ||
      !needUInt(V, "max_connections", D.MaxConnections, Err) ||
      !needDouble(V, "uptime_seconds", D.UptimeSeconds, Err))
    return false;
  // Joined the v1 schema with deadline/shedding support: optional on
  // read (0, what older daemons answer), always written.
  if (!optUInt(V, "deadline_expired", D.DeadlineExpired, Err) ||
      !optUInt(V, "shed_requests", D.ShedRequests, Err) ||
      !optUInt(V, "queued_points", D.QueuedPoints, Err))
    return false;
  Out = D;
  return true;
}

//===----------------------------------------------------------------------===//
// Socket plumbing
//===----------------------------------------------------------------------===//

namespace {

bool fillSockAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string *Err) {
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    failMsg(Err, "socket path '" + Path + "' is empty or longer than " +
                     std::to_string(sizeof(Addr.sun_path) - 1) + " bytes");
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

std::string sysErr(const char *What, const std::string &Path) {
  return std::string(What) + " " + Path + ": " + std::strerror(errno);
}

} // namespace

int wcs::listenUnix(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr, Err))
    return -1;
  // Probe before unlinking: a socket file that still answers connect()
  // belongs to a live daemon, and stealing its path would silently
  // split traffic between two stores. Any probe failure (ENOENT,
  // ECONNREFUSED, ...) means no one is serving it -- stale file.
  int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Probe >= 0) {
    if (::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                  sizeof(Addr)) == 0) {
      ::close(Probe);
      failMsg(Err, "daemon already running at " + Path +
                       " (socket answers; stop it or use --shutdown)");
      return -1;
    }
    ::close(Probe);
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    failMsg(Err, sysErr("socket", Path));
    return -1;
  }
  ::unlink(Path.c_str()); // A stale socket file blocks bind.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 16) < 0) {
    failMsg(Err, sysErr("bind/listen", Path));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int wcs::connectUnix(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  if (!fillSockAddr(Path, Addr, Err))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    failMsg(Err, sysErr("socket", Path));
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    failMsg(Err, sysErr("connect", Path));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool wcs::setSocketTimeout(int Fd, double Seconds, std::string *Err) {
  if (Seconds <= 0)
    return true;
  timeval Tv;
  Tv.tv_sec = static_cast<time_t>(Seconds);
  Tv.tv_usec = static_cast<suseconds_t>((Seconds - double(Tv.tv_sec)) * 1e6);
  if (Tv.tv_sec == 0 && Tv.tv_usec == 0)
    Tv.tv_usec = 1; // A zero timeval means "block forever"; round up.
  if (::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) < 0 ||
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv)) < 0)
    return failMsg(Err,
                   std::string("setsockopt timeout: ") + std::strerror(errno));
  return true;
}

bool wcs::sendLine(int Fd, const std::string &Line, std::string *Err) {
  if (faultinject::shouldFail("socket.send"))
    return failMsg(Err, "send: injected fault (socket.send)");
  std::string Framed = Line + '\n';
  size_t Sent = 0;
  while (Sent < Framed.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-stream must surface as a
    // `false` return (the daemon treats it as a disconnect and cancels
    // the request's unshared jobs), never as a process-killing SIGPIPE.
    ssize_t N = ::send(Fd, Framed.data() + Sent, Framed.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return failMsg(Err, "send: timed out (SO_SNDTIMEO; peer not "
                            "draining)");
      return failMsg(Err, std::string("send: ") + std::strerror(errno));
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

bool LineReader::readLine(std::string &Out, std::string *Err) {
  if (faultinject::shouldFail("socket.recv"))
    return failMsg(Err, "recv: injected fault (socket.recv)");
  for (;;) {
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      Out = Buf.substr(0, NL);
      Buf.erase(0, NL + 1);
      return true;
    }
    if (Buf.size() > MaxLineBytes)
      return failMsg(Err, "line exceeds " + std::to_string(MaxLineBytes) +
                              " bytes without a frame; closing (raise the "
                              "cap if the peer is trusted)");
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return failMsg(Err, "recv: timed out (SO_RCVTIMEO; peer sent no "
                            "complete line in time)");
      return failMsg(Err, std::string("recv: ") + std::strerror(errno));
    }
    if (N == 0)
      return false; // Clean EOF; Err untouched.
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

void wcs::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}

//===----------------------------------------------------------------------===//
// Client side
//===----------------------------------------------------------------------===//

namespace {

/// One submission attempt: the pre-retry submitSweepRequest body.
bool submitOnce(const std::string &SocketPath, const SweepRequest &Req,
                SweepResponse &Response,
                const std::function<void(const ProgressEvent &)> &OnProgress,
                double IoTimeoutSeconds, std::string *Err) {
  int Fd = connectUnix(SocketPath, Err);
  if (Fd < 0)
    return false;
  if (!setSocketTimeout(Fd, IoTimeoutSeconds, Err) ||
      !sendLine(Fd, toJson(Req).dump(false), Err)) {
    closeFd(Fd);
    return false;
  }
  LineReader Reader(Fd);
  std::string Line;
  bool GotResponse = false;
  while (Reader.readLine(Line, Err)) {
    Value V;
    std::string ParseErr;
    if (!json::parse(Line, V, &ParseErr)) {
      failMsg(Err, "malformed line from daemon: " + ParseErr);
      closeFd(Fd);
      return false;
    }
    std::string Schema;
    if (!needString(V, "schema", Schema, Err)) {
      closeFd(Fd);
      return false;
    }
    if (Schema == ProgressSchemaName) {
      ProgressEvent E;
      if (fromJson(V, E, nullptr) && OnProgress)
        OnProgress(E);
      continue;
    }
    if (!fromJson(V, Response, Err)) {
      closeFd(Fd);
      return false;
    }
    GotResponse = true;
    break;
  }
  closeFd(Fd);
  if (!GotResponse)
    return failMsg(Err, Err && !Err->empty()
                            ? *Err
                            : "daemon closed without a response");
  return true;
}

} // namespace

bool wcs::submitSweepRequest(
    const std::string &SocketPath, const SweepRequest &Req,
    SweepResponse &Response,
    const std::function<void(const ProgressEvent &)> &OnProgress,
    const ClientRetryPolicy &Policy, std::string *Err) {
  for (unsigned Attempt = 0;; ++Attempt) {
    if (Err)
      Err->clear(); // A stale diagnostic from a retried attempt lies.
    bool Answered =
        submitOnce(SocketPath, Req, Response, OnProgress,
                   Policy.IoTimeoutSeconds, Err);
    // Retrying is safe -- content addressing makes requests idempotent
    // -- but only two outcomes warrant it: no answer at all (connect or
    // transport failure), or the daemon explicitly asking for a retry
    // by shedding. Every other response, Ok or not, is the answer.
    bool Overloaded =
        Answered && !Response.Ok && Response.Error == "overloaded";
    if (Answered && !Overloaded)
      return true;
    if (Attempt >= Policy.Retries)
      return Answered; // Out of retries: the shed response (or the
                       // transport failure) stands.
    double Nominal = Policy.BaseBackoffSeconds *
                     double(uint64_t(1) << std::min(Attempt, 30u));
    Nominal = std::min(Nominal, Policy.MaxBackoffSeconds);
    // Deterministic jitter in [0.5, 1.0) of the nominal delay keeps a
    // herd of restarted clients from re-converging on the daemon.
    uint64_t Bits = hashCombine(hashMix(Policy.JitterSeed), Attempt);
    double Jitter =
        0.5 + 0.5 * (double(Bits >> 11) * (1.0 / 9007199254740992.0));
    double Delay = Nominal * Jitter;
    if (Overloaded && Response.RetryAfterSeconds > 0)
      Delay = std::max(Delay, Response.RetryAfterSeconds);
    telemetry::registry().counter("client.retries").add();
    std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
  }
}

namespace {

/// One control round trip: send {"cmd":\p Cmd}, read the ack line into
/// \p Ack (may be null when the caller only needs the handshake).
bool controlRoundTrip(const std::string &SocketPath, const char *Cmd,
                      Value *Ack, std::string *Err) {
  int Fd = connectUnix(SocketPath, Err);
  if (Fd < 0)
    return false;
  Value V = Value::object();
  V.set("schema", ControlSchemaName);
  V.set("schema_version", ServeProtocolVersion);
  V.set("cmd", Cmd);
  if (!sendLine(Fd, V.dump(false), Err)) {
    closeFd(Fd);
    return false;
  }
  LineReader Reader(Fd);
  std::string Line;
  bool Acked = Reader.readLine(Line, Err);
  closeFd(Fd);
  if (!Acked)
    return failMsg(Err, std::string("daemon closed without acking ") +
                            Cmd);
  if (!Ack)
    return true;
  std::string ParseErr;
  if (!json::parse(Line, *Ack, &ParseErr))
    return failMsg(Err, "malformed ack from daemon: " + ParseErr);
  bool Ok = false;
  if (!needBool(*Ack, "ok", Ok, Err))
    return false;
  if (!Ok)
    return failMsg(Err, std::string("daemon refused ") + Cmd);
  return true;
}

} // namespace

bool wcs::requestShutdown(const std::string &SocketPath, std::string *Err) {
  return controlRoundTrip(SocketPath, "shutdown", nullptr, Err);
}

bool wcs::requestStatus(const std::string &SocketPath, StatusDoc &Out,
                        std::string *Err) {
  // Not controlRoundTrip: the status answer is a wcs-status document,
  // not a wcs-control ack, so it carries a schema instead of "ok".
  int Fd = connectUnix(SocketPath, Err);
  if (Fd < 0)
    return false;
  Value V = Value::object();
  V.set("schema", ControlSchemaName);
  V.set("schema_version", ServeProtocolVersion);
  V.set("cmd", "status");
  if (!sendLine(Fd, V.dump(false), Err)) {
    closeFd(Fd);
    return false;
  }
  LineReader Reader(Fd);
  std::string Line;
  bool Acked = Reader.readLine(Line, Err);
  closeFd(Fd);
  if (!Acked)
    return failMsg(Err, "daemon closed without answering status");
  Value Ack;
  std::string ParseErr;
  if (!json::parse(Line, Ack, &ParseErr))
    return failMsg(Err, "malformed status from daemon: " + ParseErr);
  return fromJson(Ack, Out, Err);
}
