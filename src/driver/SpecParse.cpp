//===- src/driver/SpecParse.cpp - Config/grid spec parsing ----------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/SpecParse.h"

#include "wcs/support/StringUtil.h"

#include <cstdint>
#include <sstream>

using namespace wcs;

namespace {

bool failMsg(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

bool wcs::parseCacheSpec(const std::string &Spec, CacheConfig &Out) {
  std::istringstream IS(Spec);
  std::string Bytes, Assoc, Pol, Extra;
  if (!std::getline(IS, Bytes, ',') || !std::getline(IS, Assoc, ',') ||
      !std::getline(IS, Pol, ',') || std::getline(IS, Extra, ','))
    return false; // Exactly three fields; trailing junk is a typo.
  CacheConfig C;
  uint64_t AssocVal;
  // Sizes cap at int64 max so a config always serializes as an exact
  // JSON integer (see Value(uint64_t) in Json.h).
  if (!parseUInt64(Bytes, C.SizeBytes, INT64_MAX) ||
      !parseUInt64(Assoc, AssocVal, UINT32_MAX))
    return false;
  C.Assoc = static_cast<unsigned>(AssocVal);
  C.BlockBytes = 64;
  if (!parsePolicyName(Pol, C.Policy))
    return false;
  Out = C;
  return true;
}

//===----------------------------------------------------------------------===//
// Grid syntax
//===----------------------------------------------------------------------===//

namespace {

/// Expands one capacity token: a plain byte size or a geometric range
/// "LO:HI:xF".
bool appendSizes(const std::string &Tok, std::vector<uint64_t> &Sizes,
                 std::string *Err) {
  // Capacity points cap at int64 max so configs always serialize as
  // exact JSON integers (see Value(uint64_t) in Json.h).
  constexpr uint64_t MaxBytes = INT64_MAX;
  if (Tok.find(':') == std::string::npos) {
    uint64_t S;
    if (!parseByteSize(Tok, S, MaxBytes))
      return failMsg(Err, "bad capacity '" + Tok + "'");
    Sizes.push_back(S);
    return true;
  }
  std::istringstream IS(Tok);
  std::string Lo, Hi, Step;
  if (!std::getline(IS, Lo, ':') || !std::getline(IS, Hi, ':') ||
      !std::getline(IS, Step, ':') || IS.rdbuf()->in_avail() != 0)
    return failMsg(Err, "bad capacity range '" + Tok +
                            "' (expected LO:HI:xF)");
  uint64_t LoB, HiB, Factor;
  if (!parseByteSize(Lo, LoB, MaxBytes) || !parseByteSize(Hi, HiB, MaxBytes))
    return failMsg(Err, "bad capacity range '" + Tok + "'");
  if (Step.size() < 2 || Step[0] != 'x' ||
      !parseUInt64(Step.substr(1), Factor, 1024) || Factor < 2)
    return failMsg(Err, "bad range step '" + Step +
                            "' (expected xN with N >= 2)");
  if (LoB == 0 || LoB > HiB)
    return failMsg(Err, "empty capacity range '" + Tok + "'");
  for (uint64_t S = LoB;; S *= Factor) {
    Sizes.push_back(S);
    if (S > HiB / Factor) // Next step would pass HI (or overflow).
      break;
  }
  return true;
}

} // namespace

bool wcs::parseSweepLevelGrid(const std::string &Spec, SweepLevelGrid &Out,
                              std::string *Err) {
  SweepLevelGrid G;
  G.Assocs.clear();
  G.Policies.clear();
  bool BlockSet = false;

  // Comma-separated tokens; "key=" opens a value list that bare tokens
  // extend, so "assoc=4,8" parses as two way counts. Tokens before the
  // first key are capacities.
  std::string Key = "";
  std::istringstream IS(Spec);
  std::string Tok;
  while (std::getline(IS, Tok, ',')) {
    if (Tok.empty())
      return failMsg(Err, "empty token in grid spec '" + Spec + "'");
    size_t Eq = Tok.find('=');
    std::string Val = Tok;
    if (Eq != std::string::npos) {
      Key = Tok.substr(0, Eq);
      Val = Tok.substr(Eq + 1);
      if (Key != "assoc" && Key != "policy" && Key != "block")
        return failMsg(Err, "unknown grid key '" + Key +
                                "' (expected assoc, policy or block)");
    }
    if (Key.empty()) {
      if (!appendSizes(Val, G.SizesBytes, Err))
        return false;
    } else if (Key == "assoc") {
      // 0 is the internal fully-associative sentinel; users must spell
      // it "full" (a bare 0 is a typo everywhere else in the CLI).
      uint64_t A = 0;
      if (toLowerAscii(Val) != "full" &&
          (!parseUInt64(Val, A, 4096) || A == 0))
        return failMsg(Err, "bad associativity '" + Val +
                                "' (expected a way count or 'full')");
      G.Assocs.push_back(static_cast<unsigned>(A));
    } else if (Key == "policy") {
      PolicyKind P;
      if (!parsePolicyName(Val, P))
        return failMsg(Err, "unknown policy '" + Val + "'");
      G.Policies.push_back(P);
    } else { // block
      if (BlockSet)
        return failMsg(Err, "block takes a single value");
      uint64_t B;
      if (!parseByteSize(Val, B, 1u << 20))
        return failMsg(Err, "bad block size '" + Val + "'");
      G.BlockBytes = static_cast<unsigned>(B);
      BlockSet = true;
    }
  }
  if (G.SizesBytes.empty())
    return failMsg(Err, "grid spec '" + Spec + "' names no capacity");
  if (G.Assocs.empty())
    G.Assocs.push_back(8);
  if (G.Policies.empty())
    G.Policies.push_back(PolicyKind::Lru);
  Out = std::move(G);
  return true;
}

namespace {

/// Expands one level grid into cache configs (assoc 0 = fully
/// associative, resolved per capacity).
bool expandLevel(const SweepLevelGrid &G, std::vector<CacheConfig> &Out,
                 std::string *Err) {
  for (uint64_t Size : G.SizesBytes)
    for (unsigned A : G.Assocs)
      for (PolicyKind P : G.Policies) {
        CacheConfig C;
        C.SizeBytes = Size;
        C.BlockBytes = G.BlockBytes;
        if (A == 0) {
          uint64_t Lines = Size / G.BlockBytes;
          if (Lines == 0 || Lines > 4096)
            return failMsg(Err, "fully-associative point of " +
                                    std::to_string(Size) +
                                    " bytes needs " + std::to_string(Lines) +
                                    " ways (supported: 1 to 4096)");
          C.Assoc = static_cast<unsigned>(Lines);
        } else {
          C.Assoc = A;
        }
        C.Policy = P;
        std::string E = C.validate();
        if (!E.empty())
          return failMsg(Err, "invalid sweep point " + C.str() + ": " + E);
        Out.push_back(C);
      }
  return true;
}

} // namespace

bool wcs::expandSweepGrid(const SweepLevelGrid &L1, const SweepLevelGrid *L2,
                          InclusionPolicy Inclusion,
                          std::vector<HierarchyConfig> &Out,
                          std::string *Err) {
  std::vector<CacheConfig> C1, C2;
  if (!expandLevel(L1, C1, Err))
    return false;
  if (L2 && !expandLevel(*L2, C2, Err))
    return false;
  for (const CacheConfig &A : C1) {
    if (!L2) {
      Out.push_back(HierarchyConfig::singleLevel(A));
      continue;
    }
    for (const CacheConfig &B : C2) {
      HierarchyConfig H = HierarchyConfig::twoLevel(A, B, Inclusion);
      std::string E = H.validate();
      if (!E.empty())
        return failMsg(Err, "invalid sweep point " + H.str() + ": " + E);
      Out.push_back(std::move(H));
    }
  }
  return true;
}
