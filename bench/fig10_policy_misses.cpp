//===- bench/fig10_policy_misses.cpp - Paper Fig. 10 ----------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Regenerates Fig. 10: per-kernel miss counts under fully-associative
// LRU, Pseudo-LRU, Quad-age LRU and FIFO, normalized to set-associative
// LRU, on the scaled L1. Expected shape: most kernels are insensitive to
// the policy (ratios near 1); a few (durbin, doitgen, ...) separate the
// policies, with Quad-age LRU's scan resistance saving misses and FIFO
// costing misses -- the paper's argument for modeling real policies.
//
// Environment: WCS_SIZE (default large).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "wcs/sim/WarpingSimulator.h"
#include "wcs/trace/StackDistance.h"

#include <cstdio>

using namespace wcs;
using namespace wcs::bench;

int main() {
  ProblemSize Size = sizeFromEnv(ProblemSize::Large);
  CacheConfig Base = CacheConfig::scaledL1();
  std::printf("== Figure 10: misses per policy relative to set-associative "
              "LRU (%s), size %s ==\n\n",
              Base.str().c_str(), problemSizeName(Size));
  std::printf("%-15s %12s | %8s %8s %8s %8s\n", "kernel", "LRU misses",
              "FA-LRU", "PLRU", "QLRU", "FIFO");
  for (const KernelInfo &K : polybenchKernels()) {
    ScopProgram P = mustBuild(K, Size);

    uint64_t Misses[4];
    const PolicyKind Policies[] = {PolicyKind::Lru, PolicyKind::Plru,
                                   PolicyKind::QuadAgeLru, PolicyKind::Fifo};
    for (int I = 0; I < 4; ++I) {
      CacheConfig C = Base;
      C.Policy = Policies[I];
      WarpingSimulator Sim(P, HierarchyConfig::singleLevel(C));
      Misses[I] = Sim.run().Level[0].Misses;
    }
    StackDistanceProfiler Prof = profileProgram(P, Base.BlockBytes);
    uint64_t FA = Prof.missesForCache(Base);

    double L = static_cast<double>(Misses[0]);
    std::printf("%-15s %12llu | %8.3f %8.3f %8.3f %8.3f\n", K.Name,
                static_cast<unsigned long long>(Misses[0]), FA / L,
                Misses[1] / L, Misses[2] / L, Misses[3] / L);
  }
  std::printf("\nratios are misses(policy) / misses(set-associative "
              "LRU)\n");
  return 0;
}
