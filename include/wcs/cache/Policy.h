//===- wcs/cache/Policy.h - Replacement policy primitives -------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-set replacement-policy primitives shared by the concrete and the
/// symbolic cache (paper Sec. 2.1).
///
/// LRU and FIFO encode their state purely in the physical order of the
/// ways (most-recent / last-in first), matching the paper's formalization
/// where cache-line position equals recency rank; PLRU keeps per-set tree
/// bits and Quad-age LRU keeps 2-bit ages, both with lines at fixed ways.
/// All primitives depend only on way indices and metadata — never on block
/// identities — which is exactly the data-independence property
/// (Property 1) that warping exploits.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_CACHE_POLICY_H
#define WCS_CACHE_POLICY_H

#include <cstdint>

namespace wcs {

/// Tree-based Pseudo-LRU over power-of-two associativity (enforced by
/// CacheConfig::validate). Tree bits are stored heap-style in a uint32
/// (node 1 = root); bit == 1 means "the victim path continues right".
/// Both operations run once per cache access, so they are branchless:
/// the tree walk consumes the bits of the way index (touch) or of the
/// tree word (victim) arithmetically instead of taking data-dependent
/// branches, which the access stream would mispredict constantly.
struct PlruOps {
  /// Updates \p Bits after an access to \p Way (points the path away).
  static void touch(uint32_t &Bits, unsigned Assoc, unsigned Way) {
    // Level K consumes bit K of Way, root first: bit 0 of the walk is
    // Way's top bit. Going left (bit 0) sets the node bit, going right
    // clears it; Node doubles down the heap either way.
    unsigned Node = 1;
    for (unsigned K = static_cast<unsigned>(__builtin_ctz(Assoc)); K-- > 0;) {
      unsigned Right = (Way >> K) & 1u;
      Bits = (Bits & ~(1u << Node)) | ((Right ^ 1u) << Node);
      Node = 2 * Node + Right;
    }
  }
  /// Returns the way selected for eviction by following the tree bits.
  static unsigned victim(uint32_t Bits, unsigned Assoc) {
    // Leaves of the perfect heap are nodes [Assoc, 2*Assoc), left to
    // right, so the leaf's way index is Node - Assoc.
    unsigned Node = 1;
    while (Node < Assoc)
      Node = 2 * Node + ((Bits >> Node) & 1u);
    return Node - Assoc;
  }
};

/// Quad-age LRU modeled as 2-bit RRIP (paper reference [40], Jaleel et
/// al.): hit promotes to age 0, insertion uses age 2, the victim is the
/// lowest-index way of age 3, aging all ways when none qualifies. The
/// "aging" step is applied by the caller via victimAging on the per-way
/// age array.
struct QlruOps {
  static constexpr uint8_t HitAge = 0;
  static constexpr uint8_t InsertAge = 2;
  static constexpr uint8_t EvictAge = 3;

  /// Selects a victim among \p Assoc ways, aging in place as needed.
  static unsigned victimAging(uint8_t *Ages, unsigned Assoc);
};

/// Moves element \p Way of \p Ways to the front, shifting [0, Way) down by
/// one. Used to maintain the recency order of LRU sets.
template <typename LineT>
void rotateToFront(LineT *Ways, unsigned Way) {
  if (Way == 0)
    return;
  LineT Tmp = Ways[Way];
  for (unsigned I = Way; I > 0; --I)
    Ways[I] = Ways[I - 1];
  Ways[0] = Tmp;
}

/// Shifts all of [0, Assoc-1) down by one, freeing position 0; the caller
/// overwrites position 0 with the newly inserted line. The previous last
/// element (the LRU / first-in line) is returned by value.
template <typename LineT>
LineT shiftDownForInsert(LineT *Ways, unsigned Assoc) {
  LineT Last = Ways[Assoc - 1];
  for (unsigned I = Assoc - 1; I > 0; --I)
    Ways[I] = Ways[I - 1];
  return Last;
}

} // namespace wcs

#endif // WCS_CACHE_POLICY_H
