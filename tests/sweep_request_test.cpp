//===- tests/sweep_request_test.cpp - SweepRequest API tests --------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The one-request-type API behind every sweep: JSON round-trips of both
// program variants, validation rejections, the per-run-knob exclusion
// (Threads must not change a request's identity), the grid-exclusion
// property of sweepPointKey (overlapping grids share point keys), and
// the CLI-equivalence contract -- running a request through
// runSweepRequest yields the same counters as the underlying runSweep.
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/SweepRequest.h"

#include <gtest/gtest.h>

using namespace wcs;

namespace {

// A two-statement stencil that touches enough distinct blocks to make
// counters non-trivial at the tiny grid sizes below.
const char *TestSource = R"(
  int A[512]; int B[512];
  for (int i = 1; i < 511; i++)
    B[i] = A[i-1] + A[i+1];
)";

SweepRequest sourceRequest() {
  SweepRequest R;
  R.Source = TestSource;
  R.SourceName = "stencil.wcs";
  R.L1.SizesBytes = {1024, 2048};
  R.L1.Assocs = {2, 4};
  R.L1.Policies = {PolicyKind::Lru, PolicyKind::Fifo};
  return R;
}

SweepRequest kernelRequest() {
  SweepRequest R;
  R.Kernel = "gemm";
  R.Size = ProblemSize::Mini;
  R.L1.SizesBytes = {4096, 8192};
  R.HasL2 = true;
  R.L2.SizesBytes = {32768};
  R.L2.Assocs = {8};
  R.Inclusion = InclusionPolicy::Inclusive;
  R.Options.Backend = SimBackend::Concrete;
  R.Options.WarpSweep = false;
  return R;
}

std::string dump(const SweepRequest &R) { return toJson(R).dump(false); }

TEST(SweepRequest, KernelVariantRoundTrips) {
  SweepRequest R = kernelRequest();
  SweepRequest Back;
  std::string Err;
  ASSERT_TRUE(fromJson(toJson(R), Back, &Err)) << Err;
  EXPECT_EQ(Back.Kernel, "gemm");
  EXPECT_EQ(Back.Size, ProblemSize::Mini);
  EXPECT_TRUE(Back.HasL2);
  EXPECT_EQ(Back.Inclusion, InclusionPolicy::Inclusive);
  EXPECT_EQ(Back.L1, R.L1); // SweepLevelGrid operator==.
  EXPECT_EQ(Back.L2, R.L2);
  EXPECT_EQ(Back.Options.Backend, SimBackend::Concrete);
  EXPECT_FALSE(Back.Options.WarpSweep);
  // Serialization is a fixed point: re-dumping the parsed request
  // reproduces the document byte for byte.
  EXPECT_EQ(dump(Back), dump(R));
}

TEST(SweepRequest, SourceVariantRoundTrips) {
  SweepRequest R = sourceRequest();
  R.Params = {{"N", 100}, {"M", 7}};
  SweepRequest Back;
  std::string Err;
  ASSERT_TRUE(fromJson(toJson(R), Back, &Err)) << Err;
  EXPECT_TRUE(Back.Kernel.empty());
  EXPECT_EQ(Back.Source, R.Source);
  EXPECT_EQ(Back.SourceName, "stencil.wcs");
  EXPECT_EQ(Back.Params, R.Params);
  EXPECT_EQ(dump(Back), dump(R));
}

TEST(SweepRequest, ParamOrderDoesNotChangeIdentity) {
  // std::map canonicalizes; a request is the same request no matter the
  // order its parameters were specified in.
  SweepRequest A = sourceRequest();
  A.Params["N"] = 100;
  A.Params["M"] = 7;
  SweepRequest B = sourceRequest();
  B.Params["M"] = 7;
  B.Params["N"] = 100;
  EXPECT_EQ(dump(A), dump(B));
  EXPECT_EQ(requestHash(A), requestHash(B));
}

TEST(SweepRequest, ThreadsAreAPerRunKnobNotRequestIdentity) {
  SweepRequest A = sourceRequest();
  SweepRequest B = sourceRequest();
  A.Options.Threads = 1;
  B.Options.Threads = 16;
  // Same document, same hash: where a request runs and how wide must
  // never change what it means (or its store keys).
  EXPECT_EQ(dump(A), dump(B));
  EXPECT_EQ(requestHash(A), requestHash(B));

  HierarchyConfig H = HierarchyConfig::singleLevel(
      CacheConfig{1024, 2, 64, PolicyKind::Lru, WriteAllocate::Yes});
  EXPECT_EQ(sweepPointKey(A, H), sweepPointKey(B, H));
}

TEST(SweepRequest, PointKeysIgnoreTheGridButNotTheProgram) {
  // Two overlapping grids: the shared hierarchy config must produce the
  // SAME key (that is what lets a store serve one grid from another),
  // while a different program or different options must not.
  SweepRequest Narrow = sourceRequest();
  Narrow.L1.SizesBytes = {1024};
  SweepRequest Wide = sourceRequest();
  Wide.L1.SizesBytes = {1024, 2048, 4096};
  EXPECT_NE(requestHash(Narrow), requestHash(Wide)); // Distinct requests...

  HierarchyConfig Shared = HierarchyConfig::singleLevel(
      CacheConfig{1024, 2, 64, PolicyKind::Lru, WriteAllocate::Yes});
  EXPECT_EQ(sweepPointKey(Narrow, Shared),
            sweepPointKey(Wide, Shared)); // ...sharing stored points.

  SweepRequest OtherProgram = kernelRequest();
  EXPECT_NE(sweepPointKey(Narrow, Shared),
            sweepPointKey(OtherProgram, Shared));
  SweepRequest OtherOptions = sourceRequest();
  OtherOptions.L1.SizesBytes = {1024};
  OtherOptions.Options.Backend = SimBackend::Concrete;
  EXPECT_NE(sweepPointKey(Narrow, Shared),
            sweepPointKey(OtherOptions, Shared));
}

TEST(SweepRequest, ValidationRejections) {
  std::string Err;
  SweepRequest NoProgram;
  NoProgram.L1.SizesBytes = {1024};
  EXPECT_FALSE(validateSweepRequest(NoProgram, &Err));
  EXPECT_NE(Err.find("names no program"), std::string::npos);

  SweepRequest Both = sourceRequest();
  Both.Kernel = "gemm";
  EXPECT_FALSE(validateSweepRequest(Both, &Err));
  EXPECT_NE(Err.find("both"), std::string::npos);

  SweepRequest EmptyGrid;
  EmptyGrid.Kernel = "gemm";
  EXPECT_FALSE(validateSweepRequest(EmptyGrid, &Err));
  EXPECT_NE(Err.find("empty L1 grid"), std::string::npos);

  SweepRequest InclusionNoL2 = sourceRequest();
  InclusionNoL2.Inclusion = InclusionPolicy::Inclusive;
  EXPECT_FALSE(validateSweepRequest(InclusionNoL2, &Err));
  EXPECT_NE(Err.find("requires an L2"), std::string::npos);

  // fromJson runs the same validation: a structurally well-formed
  // document that names no valid sweep is rejected, not half-accepted.
  json::Value Doc = toJson(sourceRequest());
  json::Value Grid = *Doc.find("grid");
  json::Value BadL1 = *Grid.find("l1");
  BadL1.set("sizes_bytes", json::Value::array());
  Grid.set("l1", std::move(BadL1));
  Doc.set("grid", std::move(Grid));
  SweepRequest Out;
  EXPECT_FALSE(fromJson(Doc, Out, &Err));
  EXPECT_NE(Err.find("no capacity"), std::string::npos);
}

TEST(SweepRequest, PrepareReportsProgramAndGridErrors) {
  std::string Err;
  PreparedSweep Prep;
  SweepRequest Unknown;
  Unknown.Kernel = "not-a-kernel";
  Unknown.L1.SizesBytes = {4096};
  EXPECT_FALSE(prepareSweep(Unknown, Prep, &Err));
  EXPECT_NE(Err.find("not-a-kernel"), std::string::npos);

  SweepRequest BadSource = sourceRequest();
  BadSource.Source = "for (;;) nonsense";
  EXPECT_FALSE(prepareSweep(BadSource, Prep, &Err));
  EXPECT_NE(Err.find("stencil.wcs"), std::string::npos); // Named source.

  SweepRequest BadGrid = sourceRequest();
  BadGrid.L1.Assocs = {3};
  BadGrid.L1.Policies = {PolicyKind::Plru}; // PLRU needs a power of two.
  EXPECT_FALSE(prepareSweep(BadGrid, Prep, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(SweepRequest, PrepareExpandsTheGridInInputOrder) {
  SweepRequest R = sourceRequest();
  PreparedSweep Prep;
  std::string Err;
  ASSERT_TRUE(prepareSweep(R, Prep, &Err)) << Err;
  // 2 sizes x 2 assocs x 2 policies.
  ASSERT_EQ(Prep.Configs.size(), 8u);
  EXPECT_EQ(Prep.Configs.front().Levels[0].SizeBytes, 1024u);
  EXPECT_EQ(Prep.Configs.back().Levels[0].SizeBytes, 2048u);
  EXPECT_EQ(Prep.Program.accesses().size(), 3u);
}

TEST(SweepRequest, RunMatchesDirectRunSweep) {
  // The CLI-equivalence contract: executing through the request API is
  // the same sweep as preparing by hand and calling runSweep -- same
  // partition, same counters, point for point.
  SweepRequest R = sourceRequest();
  PreparedSweep Prep;
  SweepReport ViaRequest;
  std::string Err;
  ASSERT_TRUE(runSweepRequest(R, /*Threads=*/2, Prep, ViaRequest, &Err))
      << Err;

  SweepOptions Direct = R.Options;
  Direct.Threads = 2;
  SweepReport Reference = runSweep(Prep.Program, Prep.Configs, Direct);

  ASSERT_EQ(ViaRequest.Points.size(), Reference.Points.size());
  for (size_t I = 0; I < Reference.Points.size(); ++I) {
    SweepPoint A = ViaRequest.Points[I], B = Reference.Points[I];
    ASSERT_TRUE(A.Ok) << A.Error;
    A.Stats.Seconds = B.Stats.Seconds = 0.0; // Timing is measurement.
    EXPECT_EQ(toJson(A).dump(false), toJson(B).dump(false)) << "point " << I;
  }
}

TEST(SweepRequest, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "wcs-request-roundtrip.json";
  SweepRequest R = kernelRequest();
  std::string Err;
  ASSERT_TRUE(writeRequestFile(Path, R, &Err)) << Err;
  SweepRequest Back;
  ASSERT_TRUE(readRequestFile(Path, Back, &Err)) << Err;
  EXPECT_EQ(dump(Back), dump(R));
  EXPECT_EQ(requestHash(Back), requestHash(R));
  std::remove(Path.c_str());

  // Unreadable path: diagnostic names the file.
  EXPECT_FALSE(readRequestFile("/nonexistent/req.json", Back, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(SweepRequest, DeadlineRidesTheDocumentButNotThePointKeys) {
  // deadline_seconds joined wcs-request v1 late: absent = 0 (no
  // deadline), written only when set, so every pre-deadline document
  // and its hash are unchanged.
  SweepRequest Plain = sourceRequest();
  EXPECT_EQ(toJson(Plain).find("deadline_seconds"), nullptr);
  SweepRequest Back;
  std::string Err;
  ASSERT_TRUE(fromJson(toJson(Plain), Back, &Err)) << Err;
  EXPECT_EQ(Back.DeadlineSeconds, 0.0);

  SweepRequest Dated = sourceRequest();
  Dated.DeadlineSeconds = 2.5;
  ASSERT_TRUE(fromJson(toJson(Dated), Back, &Err)) << Err;
  EXPECT_EQ(Back.DeadlineSeconds, 2.5);
  EXPECT_EQ(dump(Back), dump(Dated));

  // The deadline is part of the request's identity (two submissions
  // with different deadlines are different requests)...
  EXPECT_NE(requestHash(Plain), requestHash(Dated));
  // ...but NOT of its points' identity: how long a client will wait
  // must never change what a point means, or every store entry and
  // cross-request dedup would fracture by deadline.
  HierarchyConfig H = HierarchyConfig::singleLevel(
      CacheConfig{1024, 2, 64, PolicyKind::Lru, WriteAllocate::Yes});
  EXPECT_EQ(sweepPointKey(Plain, H), sweepPointKey(Dated, H));

  // A negative deadline is malformed, not "no deadline".
  json::Value Doc = toJson(Dated);
  Doc.set("deadline_seconds", -1.0);
  EXPECT_FALSE(fromJson(Doc, Back, &Err));
  EXPECT_NE(Err.find("non-negative"), std::string::npos) << Err;
}

TEST(SweepResponse, RetryAfterRidesOverloadedResponses) {
  SweepResponse Shed;
  Shed.Ok = false;
  Shed.Error = "overloaded";
  Shed.RequestHash = "00000000deadbeef";
  Shed.RetryAfterSeconds = 0.75;
  SweepResponse Back;
  std::string Err;
  ASSERT_TRUE(fromJson(toJson(Shed), Back, &Err)) << Err;
  EXPECT_EQ(Back.RetryAfterSeconds, 0.75);
  EXPECT_EQ(toJson(Back).dump(false), toJson(Shed).dump(false));

  // Absent (every non-shed response, and every pre-shedding daemon's
  // output) reads back as 0: no hint.
  SweepResponse Plain;
  Plain.Ok = false;
  Plain.Error = "nope";
  Plain.RequestHash = "00000000deadbeef";
  EXPECT_EQ(toJson(Plain).find("retry_after_seconds"), nullptr);
  ASSERT_TRUE(fromJson(toJson(Plain), Back, &Err)) << Err;
  EXPECT_EQ(Back.RetryAfterSeconds, 0.0);
}

TEST(SweepResponse, RoundTripsBothOutcomes) {
  SweepResponse Ok;
  Ok.Ok = true;
  Ok.RequestHash = "00000000deadbeef";
  Ok.StoreHits = 3;
  Ok.StoreMisses = 5;
  Ok.StoreEntries = 8;
  Ok.Sweep.Tool = "wcs-serve";
  Ok.Sweep.Program = "gemm";
  std::string Err;
  SweepResponse Back;
  ASSERT_TRUE(fromJson(toJson(Ok), Back, &Err)) << Err;
  EXPECT_TRUE(Back.Ok);
  EXPECT_EQ(Back.StoreHits, 3u);
  EXPECT_EQ(Back.Sweep.Program, "gemm");
  EXPECT_EQ(toJson(Back).dump(false), toJson(Ok).dump(false));

  SweepResponse Fail;
  Fail.Ok = false;
  Fail.Error = "request has an empty L1 grid";
  Fail.RequestHash = "00000000deadbeef";
  ASSERT_TRUE(fromJson(toJson(Fail), Back, &Err)) << Err;
  EXPECT_FALSE(Back.Ok);
  EXPECT_EQ(Back.Error, Fail.Error);
  // An error response carries no sweep payload at all.
  EXPECT_EQ(toJson(Fail).find("sweep"), nullptr);
}

} // namespace
